"""The flow quantity of Definition 5 and its conservation law (Lemma 7).

The *flow* along an oriented edge ``e = (u, v)`` in round ``t`` is

* ``+1`` if ``u`` beeps and ``v`` waits,
* ``-1`` if ``u`` waits and ``v`` beeps,
* ``0`` otherwise,

and the flow along a path is the sum of the flows of its edges.  The paper's
analysis rests on two deterministic facts that this module makes checkable on
any recorded execution:

* **Conservation (Lemma 7)** — from one round to the next, the flow along a
  path changes only according to whether its endpoints beep:
  ``ν_t(ω) = ν_{t-1}(ω) + 1{v_1 ∈ B_t} − 1{v_k ∈ B_t}``.
* **Ohm's law (Corollary 8)** — the flow along a path equals the difference
  of the cumulative beep counts of its endpoints (see :mod:`repro.analysis.ohm`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.batch.trace import BatchTrace
from repro.beeping.trace import ExecutionTrace
from repro.core.states import State
from repro.errors import InvariantViolation, TraceError
from repro.graphs.topology import Topology

#: A path given by its vertex sequence (vertices may repeat, per Definition 4).
VertexPath = Sequence[int]


def edge_flow(trace: ExecutionTrace, u: int, v: int, round_index: int) -> int:
    """The flow ``ν_t((u, v))`` along the oriented edge ``(u, v)`` in ``round_index``.

    The definition only involves the states of the two endpoints, so the
    function does not need the topology; callers are responsible for passing
    actual edges when they want graph-meaningful flows.
    """
    state_u = State(trace.state_of(u, round_index))
    state_v = State(trace.state_of(v, round_index))
    if state_u.is_beeping and state_v.is_waiting:
        return 1
    if state_u.is_waiting and state_v.is_beeping:
        return -1
    return 0


def path_flow(trace: ExecutionTrace, path: VertexPath, round_index: int) -> int:
    """The flow ``ν_t(ω)`` along a path given by its vertex sequence."""
    if len(path) < 2:
        return 0
    total = 0
    for u, v in zip(path, path[1:]):
        total += edge_flow(trace, u, v, round_index)
    return total


def validate_path(topology: Topology, path: VertexPath) -> None:
    """Check that consecutive vertices of ``path`` are adjacent in ``topology``.

    Raises
    ------
    TraceError
        If the vertex sequence does not describe a path of the graph.
    """
    if len(path) < 2:
        return
    for u, v in zip(path, path[1:]):
        if not topology.has_edge(u, v):
            raise TraceError(
                f"vertices {u} and {v} are consecutive in the path but not "
                "adjacent in the graph"
            )


def flow_history(
    trace: ExecutionTrace, path: VertexPath
) -> Tuple[int, ...]:
    """The flow along ``path`` for every recorded round."""
    return tuple(
        path_flow(trace, path, round_index) for round_index in trace.rounds()
    )


@dataclass(frozen=True)
class ConservationViolation:
    """A single violation of Lemma 7 found on a trace (should never happen)."""

    round_index: int
    path: Tuple[int, ...]
    observed_flow: int
    expected_flow: int

    def message(self) -> str:
        """A human-readable description of the violation."""
        return (
            f"flow conservation violated in round {self.round_index} on path "
            f"{self.path}: observed {self.observed_flow}, expected "
            f"{self.expected_flow}"
        )


def check_flow_conservation(
    trace: ExecutionTrace,
    path: VertexPath,
    raise_on_violation: bool = True,
) -> List[ConservationViolation]:
    """Verify Lemma 7 along ``path`` for every consecutive round pair.

    Parameters
    ----------
    trace:
        A recorded execution of a protocol in the BFW family.
    path:
        Vertex sequence of the path to check.
    raise_on_violation:
        If ``True`` (default), raise :class:`InvariantViolation` at the first
        violation; otherwise collect and return all violations.

    Returns
    -------
    list of ConservationViolation
        Empty when the lemma holds on the whole trace (always, for a correct
        implementation run from a valid initial configuration).
    """
    violations: List[ConservationViolation] = []
    if len(path) < 2:
        return violations
    start, end = path[0], path[-1]
    previous = path_flow(trace, path, 0)
    for round_index in range(1, trace.num_rounds + 1):
        current = path_flow(trace, path, round_index)
        start_beeps = int(
            State(trace.state_of(start, round_index)).is_beeping
        )
        end_beeps = int(State(trace.state_of(end, round_index)).is_beeping)
        expected = previous + start_beeps - end_beeps
        if current != expected:
            violation = ConservationViolation(
                round_index=round_index,
                path=tuple(path),
                observed_flow=current,
                expected_flow=expected,
            )
            if raise_on_violation:
                raise InvariantViolation(violation.message())
            violations.append(violation)
        previous = current
    return violations


def max_flow_bound_holds(trace: ExecutionTrace, path: VertexPath) -> bool:
    """Check Eq. (1): ``|ν_t(ω)| ≤ k`` where ``k`` is the number of edges."""
    k = max(0, len(path) - 1)
    return all(
        abs(path_flow(trace, path, round_index)) <= k
        for round_index in trace.rounds()
    )


# --------------------------------------------------------------------------- #
# Batch entry points: all replicas of a BatchTrace in one vectorised pass
# --------------------------------------------------------------------------- #


def flow_history_batch(trace: BatchTrace, path: VertexPath) -> np.ndarray:
    """``ν_t(ω)`` for every round and replica: array of shape ``(T + 1, R)``.

    The batch entry point of :func:`flow_history`: one pass over the shared
    ``(T + 1, R, n)`` state array instead of ``R`` per-replica Python loops.
    Rows past a replica's retirement repeat the flow of its frozen final
    configuration; slicing row ``0 .. rounds_executed[r]`` of column ``r``
    reproduces ``flow_history(trace.replica(r), path)`` exactly.

    State behaviour is read off the BFW value convention (``value % 3``:
    Waiting / Beeping / Frozen), matching :class:`~repro.core.states.State`.
    """
    flows = np.zeros(trace.states.shape[:2], dtype=np.int64)
    if len(path) < 2:
        return flows
    behaviour = trace.states % 3
    for u, v in zip(path, path[1:]):
        behaviour_u = behaviour[:, :, u]
        behaviour_v = behaviour[:, :, v]
        flows += ((behaviour_u == 1) & (behaviour_v == 0)).astype(np.int64)
        flows -= ((behaviour_u == 0) & (behaviour_v == 1)).astype(np.int64)
    return flows


def path_flow_batch(
    trace: BatchTrace, path: VertexPath, round_index: int
) -> np.ndarray:
    """``ν_t(ω)`` for every replica at one round: array of shape ``(R,)``."""
    return flow_history_batch(trace, path)[round_index]


def check_flow_conservation_batch(
    trace: BatchTrace,
    path: VertexPath,
    raise_on_violation: bool = True,
) -> Tuple[List[ConservationViolation], ...]:
    """Verify Lemma 7 on every replica of a batch at once.

    The batch entry point of :func:`check_flow_conservation`: flows and
    endpoint beep indicators are reduced over the shared state array, and
    only rounds a replica actually executed are checked (rows past
    retirement repeat the frozen configuration, where the round-to-round
    law does not apply).  Per replica, the returned violation list is
    exactly what ``check_flow_conservation(trace.replica(r), path,
    raise_on_violation=False)`` produces.
    """
    violations: Tuple[List[ConservationViolation], ...] = tuple(
        [] for _ in range(trace.num_replicas)
    )
    if len(path) < 2:
        return violations
    flows = flow_history_batch(trace, path)
    start, end = path[0], path[-1]
    start_beeps = (trace.states[:, :, start] % 3 == 1).astype(np.int64)
    end_beeps = (trace.states[:, :, end] % 3 == 1).astype(np.int64)
    expected = flows[:-1] + start_beeps[1:] - end_beeps[1:]
    mismatch = flows[1:] != expected
    mismatch &= trace.valid_mask()[1:]
    for t, r in zip(*np.nonzero(mismatch)):
        violation = ConservationViolation(
            round_index=int(t) + 1,
            path=tuple(path),
            observed_flow=int(flows[t + 1, r]),
            expected_flow=int(expected[t, r]),
        )
        if raise_on_violation:
            raise InvariantViolation(
                f"replica {int(r)}: {violation.message()}"
            )
        violations[int(r)].append(violation)
    return violations


def max_flow_bound_holds_batch(trace: BatchTrace, path: VertexPath) -> np.ndarray:
    """Eq. (1) per replica: boolean array of shape ``(R,)``.

    Entry ``r`` equals ``max_flow_bound_holds(trace.replica(r), path)``;
    frozen rows repeat an executed round's flow, so they never change the
    per-replica maximum and need no masking.
    """
    k = max(0, len(path) - 1)
    return np.abs(flow_history_batch(trace, path)).max(axis=0) <= k
