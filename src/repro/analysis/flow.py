"""The flow quantity of Definition 5 and its conservation law (Lemma 7).

The *flow* along an oriented edge ``e = (u, v)`` in round ``t`` is

* ``+1`` if ``u`` beeps and ``v`` waits,
* ``-1`` if ``u`` waits and ``v`` beeps,
* ``0`` otherwise,

and the flow along a path is the sum of the flows of its edges.  The paper's
analysis rests on two deterministic facts that this module makes checkable on
any recorded execution:

* **Conservation (Lemma 7)** — from one round to the next, the flow along a
  path changes only according to whether its endpoints beep:
  ``ν_t(ω) = ν_{t-1}(ω) + 1{v_1 ∈ B_t} − 1{v_k ∈ B_t}``.
* **Ohm's law (Corollary 8)** — the flow along a path equals the difference
  of the cumulative beep counts of its endpoints (see :mod:`repro.analysis.ohm`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.beeping.trace import ExecutionTrace
from repro.core.states import State
from repro.errors import InvariantViolation, TraceError
from repro.graphs.topology import Topology

#: A path given by its vertex sequence (vertices may repeat, per Definition 4).
VertexPath = Sequence[int]


def edge_flow(trace: ExecutionTrace, u: int, v: int, round_index: int) -> int:
    """The flow ``ν_t((u, v))`` along the oriented edge ``(u, v)`` in ``round_index``.

    The definition only involves the states of the two endpoints, so the
    function does not need the topology; callers are responsible for passing
    actual edges when they want graph-meaningful flows.
    """
    state_u = State(trace.state_of(u, round_index))
    state_v = State(trace.state_of(v, round_index))
    if state_u.is_beeping and state_v.is_waiting:
        return 1
    if state_u.is_waiting and state_v.is_beeping:
        return -1
    return 0


def path_flow(trace: ExecutionTrace, path: VertexPath, round_index: int) -> int:
    """The flow ``ν_t(ω)`` along a path given by its vertex sequence."""
    if len(path) < 2:
        return 0
    total = 0
    for u, v in zip(path, path[1:]):
        total += edge_flow(trace, u, v, round_index)
    return total


def validate_path(topology: Topology, path: VertexPath) -> None:
    """Check that consecutive vertices of ``path`` are adjacent in ``topology``.

    Raises
    ------
    TraceError
        If the vertex sequence does not describe a path of the graph.
    """
    if len(path) < 2:
        return
    for u, v in zip(path, path[1:]):
        if not topology.has_edge(u, v):
            raise TraceError(
                f"vertices {u} and {v} are consecutive in the path but not "
                "adjacent in the graph"
            )


def flow_history(
    trace: ExecutionTrace, path: VertexPath
) -> Tuple[int, ...]:
    """The flow along ``path`` for every recorded round."""
    return tuple(
        path_flow(trace, path, round_index) for round_index in trace.rounds()
    )


@dataclass(frozen=True)
class ConservationViolation:
    """A single violation of Lemma 7 found on a trace (should never happen)."""

    round_index: int
    path: Tuple[int, ...]
    observed_flow: int
    expected_flow: int

    def message(self) -> str:
        """A human-readable description of the violation."""
        return (
            f"flow conservation violated in round {self.round_index} on path "
            f"{self.path}: observed {self.observed_flow}, expected "
            f"{self.expected_flow}"
        )


def check_flow_conservation(
    trace: ExecutionTrace,
    path: VertexPath,
    raise_on_violation: bool = True,
) -> List[ConservationViolation]:
    """Verify Lemma 7 along ``path`` for every consecutive round pair.

    Parameters
    ----------
    trace:
        A recorded execution of a protocol in the BFW family.
    path:
        Vertex sequence of the path to check.
    raise_on_violation:
        If ``True`` (default), raise :class:`InvariantViolation` at the first
        violation; otherwise collect and return all violations.

    Returns
    -------
    list of ConservationViolation
        Empty when the lemma holds on the whole trace (always, for a correct
        implementation run from a valid initial configuration).
    """
    violations: List[ConservationViolation] = []
    if len(path) < 2:
        return violations
    start, end = path[0], path[-1]
    previous = path_flow(trace, path, 0)
    for round_index in range(1, trace.num_rounds + 1):
        current = path_flow(trace, path, round_index)
        start_beeps = int(
            State(trace.state_of(start, round_index)).is_beeping
        )
        end_beeps = int(State(trace.state_of(end, round_index)).is_beeping)
        expected = previous + start_beeps - end_beeps
        if current != expected:
            violation = ConservationViolation(
                round_index=round_index,
                path=tuple(path),
                observed_flow=current,
                expected_flow=expected,
            )
            if raise_on_violation:
                raise InvariantViolation(violation.message())
            violations.append(violation)
        previous = current
    return violations


def max_flow_bound_holds(trace: ExecutionTrace, path: VertexPath) -> bool:
    """Check Eq. (1): ``|ν_t(ω)| ≤ k`` where ``k`` is the number of edges."""
    k = max(0, len(path) - 1)
    return all(
        abs(path_flow(trace, path, round_index)) <= k
        for round_index in trace.rounds()
    )
