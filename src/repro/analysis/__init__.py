"""Analysis of executions: flow, Ohm's law, invariants, convergence, waves.

Every trace-consuming module has batch entry points (``*_batch``) that take
a :class:`~repro.batch.trace.BatchTrace` and analyse all ``R`` replicas in
vectorised passes over the shared ``(T + 1, R, n)`` arrays — no per-replica
Python loops.

The streaming counterparts of those reductions — the ``Streaming*``
observers of :mod:`repro.telemetry.reducers`, proven equal to the post-hoc
functions by the telemetry parity suite — are re-exported here lazily (PEP
562), so ``from repro.analysis import StreamingConvergence`` works without
this package importing the telemetry stack eagerly (telemetry's reducers
import this package).
"""

from repro.analysis.beep_counts import (
    beep_count_matrix,
    beep_count_matrix_batch,
    beep_count_spread,
    beep_counts_at,
    leader_beep_counts,
    max_beep_count_nodes,
    pairwise_beep_difference_bounds,
)
from repro.analysis.convergence import (
    ConvergenceSummary,
    convergence_round_from_counts,
    elimination_times,
    half_life_round,
    require_convergence,
    summarize_batch,
    summarize_result,
    summarize_trace,
)
from repro.analysis.flow import (
    ConservationViolation,
    check_flow_conservation,
    check_flow_conservation_batch,
    edge_flow,
    flow_history,
    flow_history_batch,
    max_flow_bound_holds,
    max_flow_bound_holds_batch,
    path_flow,
    path_flow_batch,
    validate_path,
)
from repro.analysis.invariants import (
    InvariantReport,
    LeaderExtinctionObserver,
    LeaderExtinctionReport,
    OnlineInvariantChecker,
    check_all_invariants,
    check_claim6,
    check_distance_bound_all_rounds,
    check_leader_always_exists,
    check_leader_always_exists_batch,
    check_leader_count_nonincreasing,
    check_leader_count_nonincreasing_batch,
    check_max_beep_count_is_leader,
    check_max_beep_count_is_leader_batch,
    check_wave_propagation,
)
from repro.analysis.ohm import (
    OhmViolation,
    check_distance_bound,
    check_ohms_law,
    check_ohms_law_batch,
    check_ohms_law_on_random_paths,
    sample_random_path,
)
from repro.analysis.waves import (
    WaveFront,
    boundary_positions,
    count_waves_on_path,
    first_beep_round,
    first_beep_round_batch,
    path_meeting_points,
    wave_arrival_times,
    wave_fronts,
    wave_fronts_batch,
)

__all__ = [
    "ConservationViolation",
    "ConvergenceSummary",
    "InvariantReport",
    "LeaderExtinctionObserver",
    "LeaderExtinctionReport",
    "OhmViolation",
    "OnlineInvariantChecker",
    "WaveFront",
    "beep_count_matrix",
    "beep_count_matrix_batch",
    "beep_count_spread",
    "beep_counts_at",
    "boundary_positions",
    "check_all_invariants",
    "check_claim6",
    "check_distance_bound",
    "check_distance_bound_all_rounds",
    "check_flow_conservation",
    "check_flow_conservation_batch",
    "check_leader_always_exists",
    "check_leader_always_exists_batch",
    "check_leader_count_nonincreasing",
    "check_leader_count_nonincreasing_batch",
    "check_max_beep_count_is_leader",
    "check_max_beep_count_is_leader_batch",
    "check_ohms_law",
    "check_ohms_law_batch",
    "check_ohms_law_on_random_paths",
    "check_wave_propagation",
    "convergence_round_from_counts",
    "count_waves_on_path",
    "edge_flow",
    "elimination_times",
    "first_beep_round",
    "first_beep_round_batch",
    "flow_history",
    "flow_history_batch",
    "half_life_round",
    "leader_beep_counts",
    "max_beep_count_nodes",
    "max_flow_bound_holds",
    "max_flow_bound_holds_batch",
    "pairwise_beep_difference_bounds",
    "path_flow",
    "path_flow_batch",
    "path_meeting_points",
    "require_convergence",
    "sample_random_path",
    "summarize_batch",
    "summarize_result",
    "summarize_trace",
    "validate_path",
    "wave_arrival_times",
    "wave_fronts",
    "wave_fronts_batch",
]

#: Streaming-reducer names resolved lazily from :mod:`repro.telemetry.reducers`.
_STREAMING_EXPORTS = (
    "StreamingBeepTotals",
    "StreamingConvergence",
    "StreamingFirstBeep",
    "StreamingInvariantChecker",
    "StreamingInvariantSummary",
    "StreamingWaveFronts",
)

__all__ += list(_STREAMING_EXPORTS)


def __getattr__(name: str):
    if name in _STREAMING_EXPORTS:
        import repro.telemetry.reducers as _reducers

        return getattr(_reducers, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__))
