"""Machine-checkable versions of the paper's deterministic properties.

Section 3 of the paper establishes a collection of deterministic facts about
every execution of BFW started from a configuration satisfying Eq. (2):

* **Claim 6** — eleven local implications relating the states of a node (and
  a neighbour) across consecutive rounds, e.g. "a beeping node is frozen in
  the next round" and "a frozen node beeped in the previous round".
* **Lemma 9** — there is always at least one leader, and (from its proof)
  some node with a maximal beep count is always a leader.
* **Lemma 11** — beep counts of two nodes differ by at most their distance.
* **Lemma 12** — if ``N^beep_t(u) > N^beep_t(v)`` then ``v`` beeps at some
  round ``s ≤ t + dis(u, v)``.

These functions raise :class:`~repro.errors.InvariantViolation` when a
property fails, making them usable both as test assertions and as on-line
checks attached to a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.beep_counts import beep_count_matrix
from repro.batch.observers import (  # noqa: F401  (re-exported: the batch-
    LeaderExtinctionObserver,  # shaped invariant-violation observer lives
    LeaderExtinctionReport,  # with the engines' observer layer)
)
from repro.batch.trace import BatchTrace
from repro.beeping.observers import Observer, RoundSnapshot
from repro.beeping.trace import ExecutionTrace
from repro.core.states import State
from repro.errors import InvariantViolation
from repro.graphs.topology import Topology


# --------------------------------------------------------------------------- #
# Claim 6
# --------------------------------------------------------------------------- #


def check_claim6(trace: ExecutionTrace, topology: Topology) -> None:
    """Verify all eleven implications of Claim 6 over the whole trace.

    Raises
    ------
    InvariantViolation
        With a message identifying the equation, round and node(s) involved.
    """
    def states_at(round_index: int) -> List[State]:
        return [State(v) for v in trace.states[round_index]]

    previous = states_at(0)
    for t in range(1, trace.num_rounds + 1):
        current = states_at(t)
        _check_claim6_forward(previous, current, topology, t - 1)
        _check_claim6_backward(previous, current, topology, t)
        previous = current


def _check_claim6_forward(
    states_t: Sequence[State],
    states_next: Sequence[State],
    topology: Topology,
    round_index: int,
) -> None:
    """Eqs. (3)-(6): implications from round ``t`` to round ``t + 1``."""
    for u in topology.nodes():
        if states_t[u].is_waiting and states_next[u].is_frozen:
            raise InvariantViolation(
                f"Eq. (3) violated at round {round_index}: node {u} went from "
                "Waiting to Frozen"
            )
        if states_t[u].is_beeping and not states_next[u].is_frozen:
            raise InvariantViolation(
                f"Eq. (4) violated at round {round_index}: node {u} beeped but "
                f"is {states_next[u].short_name} next round"
            )
        if states_t[u].is_frozen and not states_next[u].is_waiting:
            raise InvariantViolation(
                f"Eq. (5) violated at round {round_index}: node {u} was Frozen "
                f"but is {states_next[u].short_name} next round"
            )
    for u, v in topology.edges:
        for a, b in ((u, v), (v, u)):
            if states_t[a].is_beeping and states_t[b].is_waiting:
                if states_next[b] is not State.B_FOLLOWER:
                    raise InvariantViolation(
                        f"Eq. (6) violated at round {round_index}: node {b} heard "
                        f"a beep from {a} while Waiting but moved to "
                        f"{states_next[b].short_name} instead of B-follower"
                    )


def _check_claim6_backward(
    states_prev: Sequence[State],
    states_t: Sequence[State],
    topology: Topology,
    round_index: int,
) -> None:
    """Eqs. (7)-(11): implications from round ``t`` back to round ``t − 1``."""
    for u in topology.nodes():
        if states_t[u].is_waiting and states_prev[u].is_beeping:
            raise InvariantViolation(
                f"Eq. (7) violated at round {round_index}: node {u} is Waiting "
                "but beeped in the previous round"
            )
        if states_t[u].is_beeping and not states_prev[u].is_waiting:
            raise InvariantViolation(
                f"Eq. (8) violated at round {round_index}: node {u} beeps but was "
                f"{states_prev[u].short_name} in the previous round"
            )
        if states_t[u].is_frozen and not states_prev[u].is_beeping:
            raise InvariantViolation(
                f"Eq. (9) violated at round {round_index}: node {u} is Frozen but "
                f"was {states_prev[u].short_name} in the previous round"
            )
        if states_t[u] is State.B_FOLLOWER:
            heard_from = [
                w
                for w in topology.neighbors(u)
                if states_prev[w].is_beeping
            ]
            if not heard_from:
                raise InvariantViolation(
                    f"Eq. (11) violated at round {round_index}: node {u} is in "
                    "B-follower but no neighbour beeped in the previous round"
                )
    for u, v in topology.edges:
        for a, b in ((u, v), (v, u)):
            if states_t[a].is_frozen and states_t[b].is_waiting:
                if not states_prev[b].is_frozen:
                    raise InvariantViolation(
                        f"Eq. (10) violated at round {round_index}: node {a} is "
                        f"Frozen and neighbour {b} is Waiting, but {b} was "
                        f"{states_prev[b].short_name} in the previous round"
                    )


# --------------------------------------------------------------------------- #
# Lemma 9 and friends
# --------------------------------------------------------------------------- #


def check_leader_always_exists(trace: ExecutionTrace) -> None:
    """Verify Lemma 9: every recorded round contains at least one leader."""
    counts = trace.leader_counts()
    zero_rounds = np.flatnonzero(counts == 0)
    if len(zero_rounds) > 0:
        raise InvariantViolation(
            f"Lemma 9 violated: no leader in round {int(zero_rounds[0])}"
        )


def check_leader_count_nonincreasing(trace: ExecutionTrace) -> None:
    """Verify that the number of leaders never increases under BFW.

    Not stated as a numbered lemma, but immediate from the transition rules
    (no transition enters a leader state from a non-leader state); it is what
    makes "stop at the first single-leader round" a sound convergence
    criterion.
    """
    counts = trace.leader_counts()
    increases = np.flatnonzero(np.diff(counts) > 0)
    if len(increases) > 0:
        t = int(increases[0])
        raise InvariantViolation(
            f"leader count increased from {int(counts[t])} to {int(counts[t + 1])} "
            f"between rounds {t} and {t + 1}"
        )


def check_max_beep_count_is_leader(trace: ExecutionTrace) -> None:
    """Verify the inductive invariant of Lemma 9's proof.

    In every round, the set ``M*_t`` — nodes that maximise ``N^beep_t`` *and*
    are leaders — is non-empty.
    """
    counts = np.zeros(trace.n, dtype=np.int64)
    for round_index in trace.rounds():
        counts = counts + trace.beeping_mask(round_index)
        leaders = trace.leader_mask(round_index)
        maximum = counts.max()
        maximal = counts == maximum
        if not bool((maximal & leaders).any()):
            raise InvariantViolation(
                f"proof invariant of Lemma 9 violated at round {round_index}: "
                "no leader has the maximal beep count"
            )


def check_leader_always_exists_batch(trace: BatchTrace) -> None:
    """Verify Lemma 9 for every replica of a batch trace at once.

    The batch entry point of :func:`check_leader_always_exists`: one
    vectorised pass over the shared ``(T + 1, R)`` leader counts, skipping
    frozen rows past each replica's retirement.
    """
    bad = (trace.leader_counts() == 0) & trace.valid_mask()
    if bad.any():
        round_index, replica = (int(v) for v in np.argwhere(bad)[0])
        raise InvariantViolation(
            f"Lemma 9 violated: no leader in round {round_index} of replica "
            f"{replica}"
        )


def check_leader_count_nonincreasing_batch(trace: BatchTrace) -> None:
    """Verify the non-increasing leader count for every replica at once.

    The batch entry point of :func:`check_leader_count_nonincreasing`.
    """
    counts = trace.leader_counts()
    increases = (np.diff(counts, axis=0) > 0) & trace.valid_mask()[1:]
    if increases.any():
        round_index, replica = (int(v) for v in np.argwhere(increases)[0])
        raise InvariantViolation(
            f"leader count increased from {int(counts[round_index, replica])} "
            f"to {int(counts[round_index + 1, replica])} between rounds "
            f"{round_index} and {round_index + 1} of replica {replica}"
        )


def check_max_beep_count_is_leader_batch(trace: BatchTrace) -> None:
    """Verify Lemma 9's proof invariant for every replica at once.

    The batch entry point of :func:`check_max_beep_count_is_leader`: the
    cumulative beep counts of all replicas come from one pass over the
    shared beep history.
    """
    counts = np.cumsum(
        trace.beeping_history().astype(np.int64), axis=0, dtype=np.int64
    )
    maximal = counts == counts.max(axis=2, keepdims=True)
    ok = (maximal & trace.leader_history()).any(axis=2)
    bad = ~ok & trace.valid_mask()
    if bad.any():
        round_index, replica = (int(v) for v in np.argwhere(bad)[0])
        raise InvariantViolation(
            f"proof invariant of Lemma 9 violated at round {round_index} of "
            f"replica {replica}: no leader has the maximal beep count"
        )


def check_distance_bound_all_rounds(
    trace: ExecutionTrace,
    topology: Topology,
    node_pairs: Optional[Sequence[Tuple[int, int]]] = None,
) -> None:
    """Verify Lemma 11 for every recorded round (all pairs by default)."""
    counts = beep_count_matrix(trace)
    if node_pairs is None:
        node_pairs = [
            (u, v) for u in topology.nodes() for v in topology.nodes() if u < v
        ]
    distances = {
        pair: topology.distance(pair[0], pair[1]) for pair in node_pairs
    }
    for round_index in trace.rounds():
        row = counts[round_index]
        for (u, v), distance in distances.items():
            difference = int(abs(row[u] - row[v]))
            if difference > distance:
                raise InvariantViolation(
                    f"Lemma 11 violated at round {round_index} for ({u}, {v}): "
                    f"difference {difference} > distance {distance}"
                )


def check_wave_propagation(
    trace: ExecutionTrace,
    topology: Topology,
    node_pairs: Optional[Sequence[Tuple[int, int]]] = None,
) -> None:
    """Verify Lemma 12 on a trace.

    For every checked pair ``(u, v)`` and round ``t`` with
    ``N^beep_t(u) > N^beep_t(v)``, node ``v`` must beep in some round
    ``s ≤ t + dis(u, v)``.  Rounds too close to the end of the trace (where
    the deadline ``t + dis(u, v)`` is not recorded) are skipped.
    """
    counts = beep_count_matrix(trace)
    if node_pairs is None:
        node_pairs = [
            (u, v) for u in topology.nodes() for v in topology.nodes() if u != v
        ]
    beeping = np.vstack(
        [trace.beeping_mask(round_index) for round_index in trace.rounds()]
    )
    last_round = trace.num_rounds
    for u, v in node_pairs:
        distance = topology.distance(u, v)
        for t in trace.rounds():
            deadline = t + distance
            if deadline > last_round:
                break
            if counts[t, u] > counts[t, v]:
                if not bool(beeping[t : deadline + 1, v].any()):
                    raise InvariantViolation(
                        f"Lemma 12 violated for pair ({u}, {v}) at round {t}: "
                        f"N^beep(u) = {int(counts[t, u])} > "
                        f"N^beep(v) = {int(counts[t, v])} but v never beeps by "
                        f"round {deadline}"
                    )


def check_all_invariants(trace: ExecutionTrace, topology: Topology) -> None:
    """Run every deterministic check of this module on a trace.

    Intended for tests and the invariants benchmark; quadratic in ``n`` for
    the pairwise lemmas, so keep the graphs modest.
    """
    check_claim6(trace, topology)
    check_leader_always_exists(trace)
    check_leader_count_nonincreasing(trace)
    check_max_beep_count_is_leader(trace)
    check_distance_bound_all_rounds(trace, topology)


# --------------------------------------------------------------------------- #
# On-line observer
# --------------------------------------------------------------------------- #


@dataclass
class InvariantReport:
    """Summary produced by :class:`OnlineInvariantChecker` at the end of a run."""

    rounds_checked: int = 0
    leaderless_rounds: List[int] = field(default_factory=list)
    leader_count_increases: List[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether no violation was observed."""
        return not self.leaderless_rounds and not self.leader_count_increases


class OnlineInvariantChecker(Observer):
    """Observer that checks the cheap invariants while a simulation runs.

    Checks Lemma 9 (at least one leader) and the non-increasing leader count
    every round, without storing the trace.  Attach it to a
    :class:`~repro.beeping.simulator.Simulator` run to get continuous
    verification at negligible cost.
    """

    def __init__(self, raise_on_violation: bool = True) -> None:
        self._raise = raise_on_violation
        self._previous_count: Optional[int] = None
        self.report = InvariantReport()

    def on_round(self, snapshot: RoundSnapshot) -> None:
        count = snapshot.leader_count
        self.report.rounds_checked += 1
        if count == 0:
            self.report.leaderless_rounds.append(snapshot.round_index)
            if self._raise:
                raise InvariantViolation(
                    f"Lemma 9 violated: no leader in round {snapshot.round_index}"
                )
        if self._previous_count is not None and count > self._previous_count:
            self.report.leader_count_increases.append(snapshot.round_index)
            if self._raise:
                raise InvariantViolation(
                    f"leader count increased to {count} in round "
                    f"{snapshot.round_index}"
                )
        self._previous_count = count
