"""Beep-wave extraction and tracking.

The paper explains BFW's behaviour in terms of *beep waves*: a leader's beep
triggers its waiting neighbours to beep in the next round, their neighbours
in the round after, and so on, producing a front that travels away from the
leader at one hop per round until it crashes into another wave or the graph's
boundary.  Leaders crossed by a wave are eliminated.

This module extracts those waves from recorded traces:

* the per-round *front* (the set of beeping nodes),
* the wave *meeting point* on path graphs (used by the lower-bound
  experiment E4, where the meeting point performs an approximate random
  walk between the two surviving leaders),
* per-node first-arrival times of a wave started by a chosen leader.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.batch.trace import BatchTrace
from repro.beeping.trace import ExecutionTrace
from repro.errors import TraceError
from repro.graphs.topology import Topology


@dataclass(frozen=True)
class WaveFront:
    """The set of beeping nodes in one round."""

    round_index: int
    nodes: Tuple[int, ...]

    @property
    def size(self) -> int:
        """Number of nodes beeping in this round."""
        return len(self.nodes)


def wave_fronts(trace: ExecutionTrace) -> Tuple[WaveFront, ...]:
    """The beeping front of every recorded round (possibly empty fronts)."""
    return tuple(
        WaveFront(round_index=t, nodes=trace.beeping_nodes(t))
        for t in trace.rounds()
    )


def first_beep_round(trace: ExecutionTrace) -> np.ndarray:
    """For every node, the first round in which it beeps (``-1`` if never)."""
    firsts = np.full(trace.n, -1, dtype=np.int64)
    for t in trace.rounds():
        mask = trace.beeping_mask(t)
        unseen = (firsts == -1) & mask
        firsts[unseen] = t
    return firsts


def first_beep_round_batch(trace: BatchTrace) -> np.ndarray:
    """First beep round of every replica and node: ``(R, n)``, ``-1`` if never.

    The batch entry point of :func:`first_beep_round`: one vectorised pass
    over the ``(T + 1, R, n)`` beep history instead of a per-replica Python
    loop.  Frozen rows past a replica's retirement repeat its final live
    row, so they can neither advance nor invent a first beep — row ``r`` of
    the result equals ``first_beep_round(trace.replica(r))`` exactly.
    """
    beeping = trace.beeping_history()
    firsts = beeping.argmax(axis=0).astype(np.int64)
    firsts[~beeping.any(axis=0)] = -1
    return firsts


def wave_fronts_batch(
    trace: BatchTrace,
) -> Tuple[Tuple[WaveFront, ...], ...]:
    """The beeping fronts of every replica, from one pass over the batch.

    Replica ``r``'s entry equals ``wave_fronts(trace.replica(r))`` — fronts
    are extracted from the shared ``(T + 1, R, n)`` beep history instead of
    rebuilding each replica's trace and re-deriving its masks.
    """
    beeping = trace.beeping_history()
    fronts: List[Tuple[WaveFront, ...]] = []
    for replica in range(trace.num_replicas):
        last = int(trace.rounds_executed[replica])
        fronts.append(
            tuple(
                WaveFront(
                    round_index=t,
                    nodes=tuple(
                        int(node) for node in np.flatnonzero(beeping[t, replica])
                    ),
                )
                for t in range(last + 1)
            )
        )
    return tuple(fronts)


def wave_arrival_times(
    trace: ExecutionTrace, topology: Topology, origin: int
) -> np.ndarray:
    """First-beep round of every node, relative to the origin's first beep.

    When a single leader is planted at ``origin``, the resulting arrival
    times equal the graph distance from the origin (one hop per round), which
    is what the wave-propagation tests assert.
    """
    firsts = first_beep_round(trace)
    if firsts[origin] < 0:
        raise TraceError(f"origin node {origin} never beeps in the trace")
    relative = firsts.astype(float) - float(firsts[origin])
    relative[firsts < 0] = np.inf
    return relative


def path_meeting_points(
    trace: ExecutionTrace, topology: Topology
) -> Tuple[Tuple[int, float], ...]:
    """Track where opposing waves meet on a path graph.

    For a path graph with nodes labelled ``0 .. n-1`` in order, the function
    returns, for every round that contains at least two beeping nodes, the
    midpoint of the beeping front (mean position of beeping nodes).  When two
    leaders sit at the two ends of the path, this midpoint tracks the
    boundary between the regions dominated by each leader; the paper's
    Section 5 conjectures that it behaves like a simple random walk, which
    the lower-bound experiment E4 examines empirically.

    Returns
    -------
    tuple of (round, midpoint) pairs.
    """
    _require_path(topology)
    points: List[Tuple[int, float]] = []
    for t in trace.rounds():
        nodes = trace.beeping_nodes(t)
        if len(nodes) >= 2:
            points.append((t, float(np.mean(nodes))))
    return tuple(points)


def boundary_positions(
    trace: ExecutionTrace, topology: Topology, left_leader: int, right_leader: int
) -> Tuple[Tuple[int, float], ...]:
    """Track the territorial boundary between two leaders on a path graph.

    The *territory* of a leader in round ``t`` is measured through beep
    counts: by Ohm's law the set of nodes whose cumulative beep count is
    closer to the left leader's count belongs to the left wave system.  The
    boundary position is the number of nodes whose beep count is at least as
    large as what a wave from the left leader alone would have produced,
    i.e. the index where the beep-count profile switches allegiance.

    The returned positions drift like a random walk until one leader is
    eliminated, matching the discussion in Section 5.
    """
    _require_path(topology)
    if not 0 <= left_leader < topology.n or not 0 <= right_leader < topology.n:
        raise TraceError("leader indices outside the node range")
    if left_leader > right_leader:
        left_leader, right_leader = right_leader, left_leader
    counts = np.zeros(trace.n, dtype=np.int64)
    positions: List[Tuple[int, float]] = []
    for t in trace.rounds():
        counts = counts + trace.beeping_mask(t)
        left_count = counts[left_leader]
        right_count = counts[right_leader]
        # Node u sides with the left leader when its beep count is closer to
        # what the left wave imposes (N_left - dist) than to the right one.
        interior = np.arange(left_leader, right_leader + 1)
        left_influence = left_count - (interior - left_leader)
        right_influence = right_count - (right_leader - interior)
        with_left = left_influence >= right_influence
        boundary = float(left_leader + with_left.sum() - 0.5)
        positions.append((t, boundary))
    return tuple(positions)


def count_waves_on_path(trace: ExecutionTrace, topology: Topology) -> np.ndarray:
    """Number of disjoint beeping runs ("waves in flight") per round on a path."""
    _require_path(topology)
    counts = np.zeros(trace.num_rounds + 1, dtype=int)
    for t in trace.rounds():
        mask = trace.beeping_mask(t)
        # Count maximal runs of consecutive True values.
        padded = np.concatenate(([False], mask, [False]))
        starts = np.flatnonzero(padded[1:] & ~padded[:-1])
        counts[t] = len(starts)
    return counts


def _require_path(topology: Topology) -> None:
    expected = [(i, i + 1) for i in range(topology.n - 1)]
    if list(topology.edges) != expected:
        raise TraceError(
            "this analysis requires a path graph with consecutive labels "
            "(as produced by repro.graphs.path_graph)"
        )
