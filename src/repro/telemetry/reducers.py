"""Streaming reducers: the batch analysis reductions as online observers.

Every reduction in :mod:`repro.analysis` that consumes a recorded
:class:`~repro.batch.trace.BatchTrace` has a streaming sibling here — a
:class:`~repro.batch.observers.BatchObserver` that folds the same quantity
into an ``O(R · n)`` accumulator *while the engine runs*, so sweeps at
scales where the ``(T + 1, R, n)`` history cannot be materialised still get
their analysis results:

==========================  =====================================================
observer kind               equals the post-hoc function
==========================  =====================================================
``streaming-first-beep``    :func:`repro.analysis.first_beep_round_batch`
``streaming-wave-fronts``   :func:`repro.analysis.wave_fronts_batch`
``streaming-invariants``    the three ``check_*_batch`` invariant checks
``streaming-beep-totals``   ``beep_count_matrix_batch(trace)[rounds[r], r]``
``streaming-convergence``   :func:`repro.analysis.summarize_batch`
==========================  =====================================================

The equality is exact (bit-equal, enforced by the telemetry parity suite on
every backend): the engines report round ``t`` to observers *before* retiring
replicas for ``t``, so "replica active at ``on_round(t)``" coincides with
"row ``t`` inside ``BatchTrace.valid_mask()``", and accumulating over active
rows reproduces the valid-masked post-hoc computation row for row.

All reducers register themselves as :class:`ObserverSpec` kinds on import;
:mod:`repro.batch.observers` imports this module lazily the first time an
unknown ``streaming-*`` kind is looked up, so cells carrying these specs
build correctly inside spawn workers that never imported the telemetry
package explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.convergence import ConvergenceSummary
from repro.analysis.waves import WaveFront
from repro.batch.observers import (
    BatchObserver,
    BatchRunInfo,
    register_observer_kind,
)
from repro.errors import ConfigurationError, InvariantViolation, SimulationError

__all__ = [
    "StreamingBeepTotals",
    "StreamingConvergence",
    "StreamingFirstBeep",
    "StreamingInvariantChecker",
    "StreamingInvariantSummary",
    "StreamingWaveFronts",
]


def _require_constant_state(beeping: Optional[np.ndarray], what: str) -> np.ndarray:
    if beeping is None:
        raise ConfigurationError(
            f"{what} requires a constant-state protocol; memory engines "
            "report no beeping classification"
        )
    return beeping


class StreamingFirstBeep(BatchObserver):
    """Online ``first_beep_round_batch``: first beep round per replica and node.

    Keeps one ``(R, n)`` array; a node's entry is set the first round it
    beeps while its replica is active, which is exactly the first occurrence
    the post-hoc ``argmax`` over the beep history finds (frozen rows repeat
    a row already inside the valid range, so they can never be first).
    """

    def __init__(self) -> None:
        self._firsts: Optional[np.ndarray] = None
        self._unseen = 0

    def on_start(self, info: BatchRunInfo) -> None:
        self._firsts = np.full((info.num_replicas, info.n), -1, dtype=np.int64)
        self._unseen = info.num_replicas * info.n

    def on_round(
        self,
        round_index: int,
        states: Optional[np.ndarray],
        beeping: Optional[np.ndarray],
        leaders: np.ndarray,
        active_mask: np.ndarray,
    ) -> None:
        if self._firsts is None:
            raise SimulationError("StreamingFirstBeep.on_round before on_start")
        if not self._unseen:
            # Every (replica, node) entry is set; later rounds cannot be first.
            return
        beeping = _require_constant_state(beeping, "first-beep streaming")
        active = np.asarray(active_mask, dtype=bool)
        unseen = (self._firsts == -1) & beeping
        unseen &= active[:, None]
        hits = int(np.count_nonzero(unseen))
        if hits:
            self._firsts[unseen] = round_index
            self._unseen -= hits

    def result(self) -> np.ndarray:
        if self._firsts is None:
            raise SimulationError("no rounds observed yet")
        return self._firsts.copy()

    @classmethod
    def merge_results(cls, results: Sequence[object]) -> np.ndarray:
        return np.vstack([np.asarray(result) for result in results])


class StreamingWaveFronts(BatchObserver):
    """Online ``wave_fronts_batch``: per-round beeping fronts, per replica.

    The front *sequence* is the result, so memory is proportional to the
    output (one tuple of node indices per executed round and replica) — but
    never to the ``(T + 1, R, n)`` state history the post-hoc function
    needs.
    """

    def __init__(self) -> None:
        self._fronts: Optional[List[List[WaveFront]]] = None

    def on_start(self, info: BatchRunInfo) -> None:
        self._fronts = [[] for _ in range(info.num_replicas)]

    def on_round(
        self,
        round_index: int,
        states: Optional[np.ndarray],
        beeping: Optional[np.ndarray],
        leaders: np.ndarray,
        active_mask: np.ndarray,
    ) -> None:
        if self._fronts is None:
            raise SimulationError("StreamingWaveFronts.on_round before on_start")
        beeping = _require_constant_state(beeping, "wave-front streaming")
        active = np.asarray(active_mask, dtype=bool)
        for replica in np.flatnonzero(active):
            self._fronts[replica].append(
                WaveFront(
                    round_index=round_index,
                    nodes=tuple(
                        int(node) for node in np.flatnonzero(beeping[replica])
                    ),
                )
            )

    def result(self) -> Tuple[Tuple[WaveFront, ...], ...]:
        if self._fronts is None:
            raise SimulationError("no rounds observed yet")
        return tuple(tuple(fronts) for fronts in self._fronts)

    @classmethod
    def merge_results(
        cls, results: Sequence[object]
    ) -> Tuple[Tuple[WaveFront, ...], ...]:
        """Concatenate per-run front sequences (any replica counts).

        One entry per replica on the sequential backend's merge path, one
        per shard on the sharded backends' — flattened in replica order.
        """
        merged: List[Tuple[WaveFront, ...]] = []
        for result in results:
            for fronts in tuple(result):  # type: ignore[arg-type]
                merged.append(tuple(fronts))
        return tuple(merged)


@dataclass(frozen=True, eq=False)
class StreamingInvariantSummary:
    """Per-replica first violations of the three batch invariant checks.

    ``-1`` everywhere means the corresponding invariant held for the whole
    run; otherwise the entry is the first violating round, matching the
    row-major first violation the post-hoc ``check_*_batch`` functions
    report.

    Attributes
    ----------
    first_leaderless_round:
        ``(R,)`` first round with zero leaders (Lemma 9).
    first_increase_round:
        ``(R,)`` first round ``t`` whose leader count exceeds round
        ``t - 1``'s (the non-increasing invariant); ``first_increase_from``
        / ``first_increase_to`` hold the two counts involved.
    first_max_beep_violation_round:
        ``(R,)`` first round where no leader holds a maximal cumulative
        beep count (Lemma 9's proof invariant).
    rounds_observed:
        ``(R,)`` rounds each replica executed.
    """

    first_leaderless_round: np.ndarray
    first_increase_round: np.ndarray
    first_increase_from: np.ndarray
    first_increase_to: np.ndarray
    first_max_beep_violation_round: np.ndarray
    rounds_observed: np.ndarray

    @property
    def num_replicas(self) -> int:
        """Number of replicas covered by the summary."""
        return int(self.first_leaderless_round.shape[0])

    @property
    def ok(self) -> bool:
        """Whether every invariant held on every replica."""
        return (
            bool((self.first_leaderless_round == -1).all())
            and bool((self.first_increase_round == -1).all())
            and bool((self.first_max_beep_violation_round == -1).all())
        )

    @staticmethod
    def _first(rounds: np.ndarray) -> Optional[Tuple[int, int]]:
        """Row-major first ``(round, replica)`` among per-replica firsts."""
        hit = rounds >= 0
        if not hit.any():
            return None
        best_round = int(rounds[hit].min())
        replica = int(np.flatnonzero(hit & (rounds == best_round))[0])
        return best_round, replica

    def raise_if_leaderless(self) -> None:
        """Raise exactly as :func:`check_leader_always_exists_batch` would."""
        first = self._first(self.first_leaderless_round)
        if first is not None:
            round_index, replica = first
            raise InvariantViolation(
                f"Lemma 9 violated: no leader in round {round_index} of "
                f"replica {replica}"
            )

    def raise_if_increase(self) -> None:
        """Raise exactly as :func:`check_leader_count_nonincreasing_batch` would."""
        first = self._first(self.first_increase_round)
        if first is not None:
            round_index, replica = first
            raise InvariantViolation(
                f"leader count increased from "
                f"{int(self.first_increase_from[replica])} to "
                f"{int(self.first_increase_to[replica])} between rounds "
                f"{round_index - 1} and {round_index} of replica {replica}"
            )

    def raise_if_max_beep_violation(self) -> None:
        """Raise exactly as :func:`check_max_beep_count_is_leader_batch` would."""
        first = self._first(self.first_max_beep_violation_round)
        if first is not None:
            round_index, replica = first
            raise InvariantViolation(
                f"proof invariant of Lemma 9 violated at round {round_index} "
                f"of replica {replica}: no leader has the maximal beep count"
            )

    def raise_if_violated(self) -> None:
        """Run all three checks in the post-hoc order, raising on the first."""
        self.raise_if_leaderless()
        self.raise_if_increase()
        self.raise_if_max_beep_violation()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamingInvariantSummary):
            return NotImplemented
        return all(
            bool(np.array_equal(getattr(self, name), getattr(other, name)))
            for name in (
                "first_leaderless_round",
                "first_increase_round",
                "first_increase_from",
                "first_increase_to",
                "first_max_beep_violation_round",
                "rounds_observed",
            )
        )

    def __hash__(self) -> int:
        return id(self)


class StreamingInvariantChecker(BatchObserver):
    """Online form of the three batch invariant checks, without the trace.

    Folds Lemma 9 (a leader always exists), the non-increasing leader count
    and Lemma 9's proof invariant (some maximal-beep-count node is a leader)
    into ``O(R · n)`` state: the running cumulative beep counts plus a few
    ``(R,)`` first-violation arrays.
    """

    def __init__(self) -> None:
        self._summary_arrays: Optional[Tuple[np.ndarray, ...]] = None
        self._prev_counts: Optional[np.ndarray] = None
        self._beep_counts: Optional[np.ndarray] = None
        self._rounds: Optional[np.ndarray] = None

    def on_start(self, info: BatchRunInfo) -> None:
        num_replicas = info.num_replicas
        self._summary_arrays = (
            np.full(num_replicas, -1, dtype=np.int64),  # first leaderless
            np.full(num_replicas, -1, dtype=np.int64),  # first increase round
            np.full(num_replicas, -1, dtype=np.int64),  # increase: from
            np.full(num_replicas, -1, dtype=np.int64),  # increase: to
            np.full(num_replicas, -1, dtype=np.int64),  # first max-beep violation
        )
        self._prev_counts = None
        # int32 keeps the per-round max/eq passes half as wide; the counts
        # only feed comparisons, so the dtype never reaches a result.
        self._beep_counts = np.zeros((num_replicas, info.n), dtype=np.int32)
        self._rounds = None

    def on_round(
        self,
        round_index: int,
        states: Optional[np.ndarray],
        beeping: Optional[np.ndarray],
        leaders: np.ndarray,
        active_mask: np.ndarray,
    ) -> None:
        if self._summary_arrays is None or self._beep_counts is None:
            raise SimulationError(
                "StreamingInvariantChecker.on_round before on_start"
            )
        beeping = _require_constant_state(beeping, "invariant streaming")
        leaderless, increase, inc_from, inc_to, max_beep = self._summary_arrays
        counts = leaders.sum(axis=1, dtype=np.int64)
        active = np.asarray(active_mask, dtype=bool)

        fresh = active & (counts == 0) & (leaderless == -1)
        leaderless[fresh] = round_index

        if self._prev_counts is not None:
            grew = active & (counts > self._prev_counts) & (increase == -1)
            increase[grew] = round_index
            inc_from[grew] = self._prev_counts[grew]
            inc_to[grew] = counts[grew]
            np.copyto(self._prev_counts, counts, where=active)
        else:
            self._prev_counts = counts.copy()

        if active.all():
            # Fast path: `where=` ufunc loops are buffered and measurably
            # slower than plain in-place adds on the all-active common case.
            self._beep_counts += beeping
        else:
            np.add(
                self._beep_counts,
                beeping,
                out=self._beep_counts,
                where=active[:, None],
            )
        maximal = self._beep_counts == self._beep_counts.max(axis=1, keepdims=True)
        maximal &= leaders
        bad = active & ~maximal.any(axis=1) & (max_beep == -1)
        max_beep[bad] = round_index

    def on_finish(self, rounds_executed: np.ndarray) -> None:
        self._rounds = np.asarray(rounds_executed, dtype=np.int64).copy()

    def summary(self) -> StreamingInvariantSummary:
        """The per-replica invariant summary (valid once rounds were seen)."""
        if self._summary_arrays is None:
            raise SimulationError("no rounds observed yet")
        leaderless, increase, inc_from, inc_to, max_beep = self._summary_arrays
        rounds = self._rounds
        if rounds is None:
            rounds = np.zeros(leaderless.shape[0], dtype=np.int64)
        return StreamingInvariantSummary(
            first_leaderless_round=leaderless.copy(),
            first_increase_round=increase.copy(),
            first_increase_from=inc_from.copy(),
            first_increase_to=inc_to.copy(),
            first_max_beep_violation_round=max_beep.copy(),
            rounds_observed=rounds.copy(),
        )

    def result(self) -> StreamingInvariantSummary:
        return self.summary()

    @classmethod
    def merge_results(cls, results: Sequence[object]) -> StreamingInvariantSummary:
        summaries: List[StreamingInvariantSummary] = []
        for result in results:
            if not isinstance(result, StreamingInvariantSummary):
                raise ConfigurationError(
                    "StreamingInvariantChecker.merge_results expects "
                    "StreamingInvariantSummary values"
                )
            summaries.append(result)
        if not summaries:
            raise ConfigurationError("cannot merge 0 invariant summaries")
        return StreamingInvariantSummary(
            first_leaderless_round=np.concatenate(
                [s.first_leaderless_round for s in summaries]
            ),
            first_increase_round=np.concatenate(
                [s.first_increase_round for s in summaries]
            ),
            first_increase_from=np.concatenate(
                [s.first_increase_from for s in summaries]
            ),
            first_increase_to=np.concatenate(
                [s.first_increase_to for s in summaries]
            ),
            first_max_beep_violation_round=np.concatenate(
                [s.first_max_beep_violation_round for s in summaries]
            ),
            rounds_observed=np.concatenate(
                [s.rounds_observed for s in summaries]
            ),
        )


class StreamingBeepTotals(BatchObserver):
    """Online final beep counts: ``N^beep`` at each replica's last live round.

    Equals row ``rounds_executed[r]`` of replica ``r``'s post-hoc
    ``beep_count_matrix_batch`` column (the full matrix keeps accumulating
    over frozen rows past retirement, which is exactly what the active-mask
    accumulation here excludes).
    """

    def __init__(self) -> None:
        self._counts: Optional[np.ndarray] = None

    def on_start(self, info: BatchRunInfo) -> None:
        # Accumulated in int32 (half the memory traffic per round); totals
        # are bounded by the round budget, far below the int32 ceiling.
        self._counts = np.zeros((info.num_replicas, info.n), dtype=np.int32)

    def on_round(
        self,
        round_index: int,
        states: Optional[np.ndarray],
        beeping: Optional[np.ndarray],
        leaders: np.ndarray,
        active_mask: np.ndarray,
    ) -> None:
        if self._counts is None:
            raise SimulationError("StreamingBeepTotals.on_round before on_start")
        beeping = _require_constant_state(beeping, "beep-total streaming")
        active = np.asarray(active_mask, dtype=bool)
        if active.all():
            self._counts += beeping
        else:
            np.add(
                self._counts, beeping, out=self._counts, where=active[:, None]
            )

    def result(self) -> np.ndarray:
        if self._counts is None:
            raise SimulationError("no rounds observed yet")
        return self._counts.astype(np.int64)

    @classmethod
    def merge_results(cls, results: Sequence[object]) -> np.ndarray:
        return np.vstack([np.asarray(result) for result in results])


class StreamingConvergence(BatchObserver):
    """Online ``summarize_batch``: one :class:`ConvergenceSummary` per replica.

    Tracks the round-0 leader count, the last live non-single-leader round,
    the final leader count and the final leader row — everything the
    post-hoc summary derives from the ``(T + 1, R)`` count matrix — in
    ``O(R · n)`` state.
    """

    def __init__(self) -> None:
        self._initial: Optional[np.ndarray] = None
        self._last_not_single: Optional[np.ndarray] = None
        self._final_counts: Optional[np.ndarray] = None
        self._final_leaders: Optional[np.ndarray] = None
        self._rounds: Optional[np.ndarray] = None

    def on_start(self, info: BatchRunInfo) -> None:
        self._initial = None
        self._last_not_single = np.full(info.num_replicas, -1, dtype=np.int64)
        self._final_counts = np.zeros(info.num_replicas, dtype=np.int64)
        self._final_leaders = np.zeros((info.num_replicas, info.n), dtype=bool)
        self._rounds = None

    def on_round(
        self,
        round_index: int,
        states: Optional[np.ndarray],
        beeping: Optional[np.ndarray],
        leaders: np.ndarray,
        active_mask: np.ndarray,
    ) -> None:
        if self._last_not_single is None:
            raise SimulationError("StreamingConvergence.on_round before on_start")
        counts = leaders.sum(axis=1, dtype=np.int64)
        if self._initial is None:
            self._initial = counts.copy()
        active = np.asarray(active_mask, dtype=bool)
        self._last_not_single[active & (counts != 1)] = round_index
        if active.all():
            np.copyto(self._final_counts, counts)
            np.copyto(self._final_leaders, leaders)
        else:
            np.copyto(self._final_counts, counts, where=active)
            np.copyto(self._final_leaders, leaders, where=active[:, None])

    def on_finish(self, rounds_executed: np.ndarray) -> None:
        self._rounds = np.asarray(rounds_executed, dtype=np.int64).copy()

    def result(self) -> Tuple[ConvergenceSummary, ...]:
        if self._initial is None or self._last_not_single is None:
            raise SimulationError("no rounds observed yet")
        rounds = self._rounds
        if rounds is None:
            rounds = np.zeros(self._initial.shape[0], dtype=np.int64)
        summaries = []
        for replica in range(self._initial.shape[0]):
            converged = int(self._final_counts[replica]) == 1
            winner: Optional[int] = None
            if converged:
                elected = np.flatnonzero(self._final_leaders[replica])
                winner = int(elected[0]) if len(elected) == 1 else None
            summaries.append(
                ConvergenceSummary(
                    converged=converged,
                    convergence_round=(
                        int(self._last_not_single[replica]) + 1
                        if converged
                        else None
                    ),
                    winner=winner,
                    rounds_executed=int(rounds[replica]),
                    initial_leader_count=int(self._initial[replica]),
                    final_leader_count=int(self._final_counts[replica]),
                )
            )
        return tuple(summaries)

    @classmethod
    def merge_results(
        cls, results: Sequence[object]
    ) -> Tuple[ConvergenceSummary, ...]:
        """Concatenate per-run summary tuples (any replica counts).

        One summary per replica on the sequential backend's merge path, a
        whole shard's worth on the sharded backends' — replica order either
        way.
        """
        merged: List[ConvergenceSummary] = []
        for result in results:
            merged.extend(tuple(result))  # type: ignore[arg-type]
        return tuple(merged)


#: Spec kind -> factory for every streaming reducer of this module.
STREAMING_KINDS = {
    "streaming-first-beep": StreamingFirstBeep,
    "streaming-wave-fronts": StreamingWaveFronts,
    "streaming-invariants": StreamingInvariantChecker,
    "streaming-beep-totals": StreamingBeepTotals,
    "streaming-convergence": StreamingConvergence,
}

for _kind, _factory in STREAMING_KINDS.items():
    register_observer_kind(_kind, _factory)
