"""Sweep progress reporting and the live-telemetry JSONL stream.

Historically every sweep entry point carried its own
``lambda line: print("  " + line, file=sys.stderr)``; quieting a sweep,
reformatting progress, or teeing it to a file meant touching each call
site.  :class:`ProgressReporter` is the single code path those call sites
now share:

* it *is* a line-oriented progress callback (``reporter("...")`` works
  wherever ``Callable[[str], None]`` was expected), backed by
  :mod:`logging` rather than bare prints;
* ``--quiet`` suppresses the console lines without touching the telemetry
  stream;
* given a ``telemetry_path`` it appends one JSON object per cell event to a
  JSONL file while the sweep is still running, which is what ``repro tail``
  renders live (:func:`tail_telemetry`).

The JSONL schema is deliberately flat: ``{"event": "cell", ...}`` records
per completed cell (protocol, graph, mean rounds, wall seconds, rounds
advanced, sampled metrics), ``{"event": "shard", ...}`` sub-progress
records per finished seed-list shard when a backend shards cells
(``--shard-size``), ``{"event": "progress", ...}`` in-flight heartbeat
records when a backend streams them (``--heartbeat``), and one
``{"event": "summary", ...}`` record when the reporter closes.  Shard and
progress records are informational sub-progress: the summary's cell/wall
totals count merged cells only, so a sharded (or heartbeating) sweep
reports the same totals as an unsharded one.

Given a ``spans_path`` the reporter additionally reconstructs the
sweep → cell → shard → attempt span tree from the completed events it
sees (starts are derived from each event's wall time; local backends run
exactly one attempt per shard) and writes it as span-JSONL on close —
the file ``repro trace export`` turns into Chrome trace-event JSON.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO, Dict, Iterator, Optional, Set

from repro.telemetry.spans import SpanRecorder

__all__ = [
    "ProgressReporter",
    "iter_telemetry",
    "render_event",
    "tail_telemetry",
]


class ProgressReporter:
    """One sink for sweep progress lines and the telemetry JSONL stream.

    Parameters
    ----------
    quiet:
        Suppress the human-readable progress lines (the telemetry stream,
        if any, keeps flowing — quiet mode is about the console, not the
        data).
    stream:
        Where progress lines go; defaults to ``sys.stderr`` like the
        historical per-command lambdas.
    telemetry_path:
        Append JSONL telemetry records to this file while the sweep runs.
    prefix:
        Prepended to every progress line (the CLI uses ``"  "``).
    spans_path:
        Write the reconstructed span tree (JSONL, one span per line) to
        this file when the reporter closes.
    """

    def __init__(
        self,
        quiet: bool = False,
        stream: Optional[IO[str]] = None,
        telemetry_path: Optional[str] = None,
        prefix: str = "",
        spans_path: Optional[str] = None,
    ) -> None:
        self.quiet = quiet
        self.prefix = prefix
        self.telemetry_path = telemetry_path
        self._telemetry_file: Optional[IO[str]] = None
        if telemetry_path is not None:
            self._telemetry_file = open(telemetry_path, "a", encoding="utf-8")
        self.spans_path = spans_path
        self._spans: Optional[SpanRecorder] = None
        self._sweep_span_id: Optional[str] = None
        self._cell_span_ids: Dict[int, str] = {}
        self._sharded_cells: Set[int] = set()
        if spans_path is not None:
            self._spans = SpanRecorder()
            self._sweep_span_id = self._spans.begin("sweep", "sweep")
        self._cells = 0
        self._wall_seconds = 0.0
        self._rounds_advanced = 0
        # A dedicated (unregistered) Logger instance: reporters come and go
        # per command, so sharing the global logging registry would leak
        # handlers between runs and between tests.
        self._logger = logging.Logger("repro.progress", level=logging.INFO)
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.setFormatter(logging.Formatter("%(message)s"))
        self._logger.addHandler(handler)

    # ------------------------------------------------------------------ #
    # Progress lines
    # ------------------------------------------------------------------ #

    def line(self, text: str) -> None:
        """Emit one human-readable progress line (dropped under ``quiet``)."""
        if not self.quiet:
            self._logger.info("%s%s", self.prefix, text)

    def __call__(self, text: str) -> None:
        self.line(text)

    # ------------------------------------------------------------------ #
    # Telemetry stream
    # ------------------------------------------------------------------ #

    def emit(self, record: Dict[str, object]) -> None:
        """Append one JSON record to the telemetry stream (if configured)."""
        if self._telemetry_file is None:
            return
        json.dump(record, self._telemetry_file, default=str)
        self._telemetry_file.write("\n")
        self._telemetry_file.flush()

    def _cell_span(self, event: object, start: float) -> Optional[str]:
        """Get or lazily open the cell span for an event's cell index."""
        if self._spans is None:
            return None
        index = int(event.index)  # type: ignore[attr-defined]
        span_id = self._cell_span_ids.get(index)
        if span_id is None:
            span_id = self._spans.begin(
                "cell",
                f"cell {index}: {event.cell.protocol.label} on "  # type: ignore[attr-defined]
                f"{event.cell.graph.label}",  # type: ignore[attr-defined]
                parent_id=self._sweep_span_id,
                start=start,
                attrs={
                    "cell": index,
                    "protocol": event.cell.protocol.label,  # type: ignore[attr-defined]
                    "graph": event.cell.graph.label,  # type: ignore[attr-defined]
                },
            )
            self._cell_span_ids[index] = span_id
        return span_id

    def _record_shard_span(
        self,
        event: object,
        shard_index: int,
        shard_count: Optional[int],
        start: float,
        end: float,
    ) -> None:
        """One shard span plus its single attempt child (local backends
        never retry, so the attempt covers the whole shard interval)."""
        if self._spans is None:
            return
        index = int(event.index)  # type: ignore[attr-defined]
        cell_span = self._cell_span(event, start)
        attrs = {
            "cell": index,
            "shard": shard_index,
            "shards": shard_count,
            "replicas": len(event.cell.seeds),  # type: ignore[attr-defined]
        }
        shard_span = self._spans.record(
            "shard",
            f"cell {index} shard {shard_index}",
            start=start,
            end=end,
            parent_id=cell_span,
            attrs=attrs,
        )
        self._spans.record(
            "attempt",
            f"cell {index} shard {shard_index} attempt 0",
            start=start,
            end=end,
            parent_id=shard_span,
            attrs={"cell": index, "shard": shard_index, "attempt": 0},
        )

    def shard_progress(self, event: object) -> None:
        """Record one in-flight ``ShardProgress`` heartbeat into the stream.

        Progress records are pure observability: they carry the engine's
        latest heartbeat and never count towards the summary totals.
        """
        beat = event.heartbeat  # type: ignore[attr-defined]
        self.emit(
            {
                "event": "progress",
                "index": event.index,  # type: ignore[attr-defined]
                "total": event.total,  # type: ignore[attr-defined]
                "shard": getattr(event, "shard_index", None),
                "shards": getattr(event, "shard_count", None),
                "attempt": getattr(event, "attempt", 0),
                "backend": event.backend,  # type: ignore[attr-defined]
                "protocol": event.cell.protocol.label,  # type: ignore[attr-defined]
                "graph": event.cell.graph.label,  # type: ignore[attr-defined]
                "replicas": len(event.cell.seeds),  # type: ignore[attr-defined]
                "engine": beat.engine,
                "round": beat.round_index,
                "active": beat.active,
                "converged": beat.converged,
                "leaderless": beat.leaderless,
                "rounds_advanced": beat.rounds_advanced,
                "rounds_per_second": beat.rounds_per_second,
            }
        )

    def cell_completed(self, event: object, mean_rounds: Optional[float] = None) -> None:
        """Record one backend ``CellCompleted`` event into the stream.

        Shard sub-progress events (``shard_index`` set) become ``"shard"``
        records and do not count towards the summary totals — the per-cell
        event that follows them carries the merged wall time and rounds.
        """
        wall_seconds = getattr(event, "wall_seconds", None)
        rounds_advanced = getattr(event, "rounds_advanced", None)
        outcome = event.outcome  # type: ignore[attr-defined]
        shard_index = getattr(event, "shard_index", None)
        if shard_index is not None:
            now = time.time()
            self._sharded_cells.add(int(event.index))  # type: ignore[attr-defined]
            self._record_shard_span(
                event,
                int(shard_index),
                getattr(event, "shard_count", None),
                now - float(wall_seconds or 0.0),
                now,
            )
            self.emit(
                {
                    "event": "shard",
                    "index": event.index,  # type: ignore[attr-defined]
                    "total": event.total,  # type: ignore[attr-defined]
                    "shard": shard_index,
                    "shards": getattr(event, "shard_count", None),
                    "backend": event.backend,  # type: ignore[attr-defined]
                    "protocol": event.cell.protocol.label,  # type: ignore[attr-defined]
                    "graph": event.cell.graph.label,  # type: ignore[attr-defined]
                    "replicas": len(event.cell.seeds),  # type: ignore[attr-defined]
                    "wall_seconds": wall_seconds,
                    "rounds_advanced": rounds_advanced,
                }
            )
            return
        self._cells += 1
        if wall_seconds is not None:
            self._wall_seconds += wall_seconds
        if rounds_advanced is not None:
            self._rounds_advanced += rounds_advanced
        if self._spans is not None:
            now = time.time()
            start = now - float(wall_seconds or 0.0)
            index = int(event.index)  # type: ignore[attr-defined]
            if index not in self._sharded_cells:
                # Unsharded cells still get one shard/attempt pair so the
                # tree shape is uniform for consumers.
                self._record_shard_span(event, 0, 1, start, now)
            self._spans.finish(
                self._cell_span(event, start),
                end=now,
                attrs={
                    "wall_seconds": wall_seconds,
                    "rounds_advanced": rounds_advanced,
                    "replicas": len(event.cell.seeds),  # type: ignore[attr-defined]
                },
            )
        self.emit(
            {
                "event": "cell",
                "index": event.index,  # type: ignore[attr-defined]
                "total": event.total,  # type: ignore[attr-defined]
                "backend": event.backend,  # type: ignore[attr-defined]
                "protocol": event.cell.protocol.label,  # type: ignore[attr-defined]
                "graph": event.cell.graph.label,  # type: ignore[attr-defined]
                "n": outcome.n,
                "diameter": outcome.diameter,
                "replicas": len(event.cell.seeds),  # type: ignore[attr-defined]
                "mean_rounds": mean_rounds,
                "wall_seconds": wall_seconds,
                "rounds_advanced": rounds_advanced,
                "metrics": getattr(outcome, "metrics", None),
            }
        )

    def close(self) -> None:
        """Write the summary record and release the stream and handlers."""
        if self._spans is not None:
            if self._sweep_span_id is not None:
                self._spans.finish(
                    self._sweep_span_id,
                    attrs={
                        "cells": self._cells,
                        "wall_seconds": self._wall_seconds,
                        "rounds_advanced": self._rounds_advanced,
                    },
                )
            if self.spans_path is not None:
                self._spans.write_jsonl(self.spans_path)
            self._spans = None
        if self._telemetry_file is not None:
            self.emit(
                {
                    "event": "summary",
                    "cells": self._cells,
                    "wall_seconds": self._wall_seconds,
                    "rounds_advanced": self._rounds_advanced,
                }
            )
            self._telemetry_file.close()
            self._telemetry_file = None
        for handler in list(self._logger.handlers):
            self._logger.removeHandler(handler)

    def __enter__(self) -> "ProgressReporter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# Reading the stream back: `repro tail`
# ---------------------------------------------------------------------- #


def iter_telemetry(path: str) -> Iterator[Dict[str, object]]:
    """Yield the complete JSONL records currently in a telemetry file.

    The file may still be written to: a record caught mid-write (no
    terminating newline yet) is *not* parsed — it would crash
    ``json.loads`` — and is simply left for the next read, matching the
    partial-line buffering of :func:`tail_telemetry`.
    """
    with open(path, "r", encoding="utf-8") as fh:
        content = fh.read()
    complete, newline, _partial = content.rpartition("\n")
    if not newline:
        return
    for line in complete.split("\n"):
        line = line.strip()
        if line:
            yield json.loads(line)


def render_event(record: Dict[str, object]) -> str:
    """One status line for one telemetry record (what ``repro tail`` prints)."""
    event = record.get("event")
    if event == "cell":
        index = record.get("index")
        position = "?" if index is None else str(int(index) + 1)  # type: ignore[arg-type]
        parts = [
            f"[{position}/{record.get('total', '?')}]",
            f"{record.get('protocol', '?')}",
            "on",
            f"{record.get('graph', '?')}",
        ]
        mean_rounds = record.get("mean_rounds")
        if mean_rounds is not None:
            parts.append(f"mean rounds {float(mean_rounds):.1f}")  # type: ignore[arg-type]
        wall_seconds = record.get("wall_seconds")
        if wall_seconds is not None:
            parts.append(f"in {float(wall_seconds):.3f}s")  # type: ignore[arg-type]
        rounds_advanced = record.get("rounds_advanced")
        if rounds_advanced is not None and wall_seconds:
            rate = float(rounds_advanced) / float(wall_seconds)  # type: ignore[arg-type]
            parts.append(f"({rate:,.0f} replica-rounds/s)")
        return " ".join(parts)
    if event == "shard":
        index = record.get("index")
        position = "?" if index is None else str(int(index) + 1)  # type: ignore[arg-type]
        shard = record.get("shard")
        shard_position = "?" if shard is None else str(int(shard) + 1)  # type: ignore[arg-type]
        parts = [
            f"[{position}/{record.get('total', '?')}]",
            f"shard {shard_position}/{record.get('shards', '?')}",
            f"{record.get('protocol', '?')}",
            "on",
            f"{record.get('graph', '?')}",
            f"({record.get('replicas', '?')} replicas)",
        ]
        wall_seconds = record.get("wall_seconds")
        if wall_seconds is not None:
            parts.append(f"in {float(wall_seconds):.3f}s")  # type: ignore[arg-type]
        return " ".join(parts)
    if event == "progress":
        index = record.get("index")
        position = "?" if index is None else str(int(index) + 1)  # type: ignore[arg-type]
        parts = [f"[{position}/{record.get('total', '?')}]"]
        shard = record.get("shard")
        if shard is not None:
            parts.append(
                f"shard {int(shard) + 1}/{record.get('shards', '?')}"  # type: ignore[arg-type]
            )
        attempt = record.get("attempt")
        if attempt:
            parts.append(f"attempt {attempt}")
        parts.extend(
            [
                f"{record.get('protocol', '?')}",
                "on",
                f"{record.get('graph', '?')}",
                f"round {record.get('round', '?')}",
            ]
        )
        active = record.get("active")
        replicas = record.get("replicas")
        if active is not None and replicas is not None:
            parts.append(f"active {active}/{replicas}")
        rate = record.get("rounds_per_second")
        if rate:
            parts.append(f"({float(rate):,.0f} replica-rounds/s)")  # type: ignore[arg-type]
        return " ".join(parts)
    if event == "summary":
        return (
            f"sweep complete: {record.get('cells', 0)} cells, "
            f"{float(record.get('wall_seconds', 0.0)):.3f}s total, "  # type: ignore[arg-type]
            f"{record.get('rounds_advanced', 0)} replica-rounds"
        )
    return json.dumps(record, default=str)


def tail_telemetry(
    path: str,
    follow: bool = False,
    interval: float = 0.5,
    out: Optional[IO[str]] = None,
    max_wait: Optional[float] = None,
) -> int:
    """Render a telemetry JSONL file as live status lines.

    With ``follow`` the file is polled every ``interval`` seconds until the
    ``summary`` record arrives (or ``max_wait`` seconds pass — the safety
    valve the tests use).  Returns the number of records rendered.
    """
    out = out if out is not None else sys.stdout
    rendered = 0
    finished = False
    deadline = None if max_wait is None else time.monotonic() + max_wait
    buffer = ""
    with open(path, "r", encoding="utf-8") as fh:
        while True:
            buffer += fh.read()
            while "\n" in buffer:
                line, buffer = buffer.split("\n", 1)
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                print(render_event(record), file=out)
                rendered += 1
                if record.get("event") == "summary":
                    finished = True
            if not follow or finished:
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            time.sleep(interval)
    return rendered
