"""Structured span trees for sweeps: sweep → cell → shard → attempt.

A *span* is a named interval with an id, a parent, a kind, start/end
timestamps (epoch seconds) and free-form attributes.  The service and
the local progress reporter record one span tree per sweep:

* ``sweep`` — the whole submission,
* ``cell`` — one :class:`~repro.exec.ExecutionCell`,
* ``shard`` — one seed-range shard of a cell,
* ``attempt`` — one execution attempt of a shard.  Retried attempts
  link back to the attempt they supersede via the ``retry_of`` attr.

Spans export two ways:

* **JSONL** (one span per line) — the native on-disk form, written by
  :meth:`SpanRecorder.write_jsonl` and read back by
  :func:`load_spans_jsonl`.
* **Chrome trace-event JSON** — :func:`chrome_trace` emits the
  ``{"traceEvents": [...]}`` document understood by Perfetto
  (https://ui.perfetto.dev) and ``chrome://tracing``: complete events
  (``"ph": "X"``) with microsecond ``ts``/``dur``, one track (``tid``)
  per cell so shards and attempts nest visually under their cell.

The recorder is thread-safe (the service records spans from worker and
watchdog threads concurrently) and append-only; span ids are opaque
hex strings unique within a process.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "Span",
    "SpanRecorder",
    "SPAN_KINDS",
    "chrome_trace",
    "load_spans_jsonl",
    "spans_from_records",
    "write_chrome_trace",
]

SPAN_KINDS = ("sweep", "cell", "shard", "attempt")

_ids = itertools.count(1)


def _new_span_id() -> str:
    # Monotone counter + pid keeps ids unique within a process and
    # stable enough across a service's worker threads; uuid would work
    # too but makes test output noisy.
    return f"{os.getpid():x}-{next(_ids):06x}"


@dataclass
class Span:
    """One node of the span tree."""

    span_id: str
    parent_id: Optional[str]
    kind: str
    name: str
    start: float
    end: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return max(0.0, self.end - self.start)

    def to_record(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "kind": self.kind,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_record(cls, record: dict) -> "Span":
        return cls(
            span_id=str(record["span_id"]),
            parent_id=record.get("parent_id"),
            kind=str(record["kind"]),
            name=str(record["name"]),
            start=float(record["start"]),
            end=None if record.get("end") is None else float(record["end"]),
            attrs=dict(record.get("attrs") or {}),
        )


class SpanRecorder:
    """Thread-safe append-only span store.

    ``begin``/``finish`` bracket live work; ``record`` adds a span whose
    interval is already known (the local progress reporter reconstructs
    cell spans from completed events).  ``finish`` on an unknown or
    already-finished span is a no-op so racy double-finishes (worker vs
    watchdog) stay harmless.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: Dict[str, Span] = {}
        self._order: List[str] = []

    def begin(
        self,
        kind: str,
        name: str,
        *,
        parent_id: Optional[str] = None,
        attrs: Optional[dict] = None,
        start: Optional[float] = None,
    ) -> str:
        if kind not in SPAN_KINDS:
            raise ValueError(f"unknown span kind {kind!r}; expected one of {SPAN_KINDS}")
        span = Span(
            span_id=_new_span_id(),
            parent_id=parent_id,
            kind=kind,
            name=name,
            start=time.time() if start is None else float(start),
            attrs=dict(attrs or {}),
        )
        with self._lock:
            self._spans[span.span_id] = span
            self._order.append(span.span_id)
        return span.span_id

    def finish(
        self,
        span_id: str,
        *,
        end: Optional[float] = None,
        attrs: Optional[dict] = None,
    ) -> None:
        with self._lock:
            span = self._spans.get(span_id)
            if span is None or span.end is not None:
                return
            span.end = time.time() if end is None else float(end)
            if attrs:
                span.attrs.update(attrs)

    def record(
        self,
        kind: str,
        name: str,
        *,
        start: float,
        end: float,
        parent_id: Optional[str] = None,
        attrs: Optional[dict] = None,
    ) -> str:
        span_id = self.begin(kind, name, parent_id=parent_id, attrs=attrs, start=start)
        self.finish(span_id, end=end)
        return span_id

    def annotate(self, span_id: str, **attrs: object) -> None:
        with self._lock:
            span = self._spans.get(span_id)
            if span is not None:
                span.attrs.update(attrs)

    def spans(self) -> List[Span]:
        """A snapshot copy, in creation order."""

        with self._lock:
            return [
                Span(
                    span_id=span.span_id,
                    parent_id=span.parent_id,
                    kind=span.kind,
                    name=span.name,
                    start=span.start,
                    end=span.end,
                    attrs=dict(span.attrs),
                )
                for span in (self._spans[span_id] for span_id in self._order)
            ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._order)

    def write_jsonl(self, path: str) -> None:
        spans = self.spans()
        with open(path, "w", encoding="utf-8") as handle:
            for span in spans:
                json.dump(span.to_record(), handle, default=str)
                handle.write("\n")


def load_spans_jsonl(path: str) -> List[Span]:
    spans: List[Span] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(Span.from_record(json.loads(line)))
    return spans


def spans_from_records(records: Iterable[dict]) -> List[Span]:
    """Decode spans shipped as plain dicts (e.g. from the service API)."""

    return [Span.from_record(record) for record in records]


def _trace_tid(span: Span) -> int:
    # One Perfetto track per cell: the sweep span sits on track 0, every
    # cell/shard/attempt span on track cell_index + 1 so nested work
    # lines up visually under its cell.
    if span.kind == "sweep":
        return 0
    cell = span.attrs.get("cell")
    try:
        return int(cell) + 1  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return 1


def chrome_trace(spans: Sequence[Span], *, pid: int = 1) -> dict:
    """Render spans as a Chrome trace-event JSON document.

    Only finished spans become complete events (``"ph": "X"``);
    unfinished spans are rendered with zero duration so an exported
    trace of a still-running sweep still loads.
    """

    events = []
    for span in spans:
        end = span.end if span.end is not None else span.start
        args: Dict[str, object] = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": max(0.0, end - span.start) * 1e6,
                "pid": pid,
                "tid": _trace_tid(span),
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Sequence[Span], path: str, *, pid: int = 1) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(spans, pid=pid), handle, indent=2, default=str)
        handle.write("\n")
