"""Streaming telemetry: online reducers, spilled traces, and run metrics.

The three halves of the layer (ROADMAP item 3):

* :mod:`repro.telemetry.reducers` — the ``Streaming*`` observer family that
  folds the post-hoc batch reductions (first beep rounds, wave fronts, the
  ``check_*_batch`` invariants, beep-count totals, convergence summaries)
  into ``O(R · n)`` online accumulators;
* :mod:`repro.telemetry.spill` — :class:`SpillingTraceRecorder` /
  :class:`SpilledTrace`, the out-of-core trace pair recording under a byte
  budget with byte-identical replica replay;
* :mod:`repro.telemetry.metrics` + :mod:`repro.telemetry.progress` — the
  run-metrics registry sampled by every engine and backend, and the
  :class:`ProgressReporter` / ``repro tail`` JSONL stream that surfaces it
  live;
* :mod:`repro.telemetry.heartbeat` + :mod:`repro.telemetry.spans` — the
  in-flight half: :class:`HeartbeatEmitter` polled every K rounds from
  inside the engine loops (surfaced as ``ShardProgress`` events and the
  service's liveness watchdog), and the sweep → cell → shard → attempt
  span tree exportable as JSONL or Chrome trace-event JSON
  (``repro trace export``).

Importing this package is what registers the streaming observer kinds
(``streaming-*`` and ``spill-trace``) with
:mod:`repro.batch.observers` — :func:`repro.batch.observers.build_observer`
does that import lazily on first sight of an unknown kind, so pure-data
``ObserverSpec``\\ s built in a parent process resolve identically inside
spawn workers.
"""

from repro.telemetry.heartbeat import (
    Heartbeat,
    HeartbeatEmitter,
    current_heartbeat,
    use_heartbeat,
)
from repro.telemetry.metrics import (
    MetricsRegistry,
    current_metrics,
    sample_engine_run,
    use_metrics,
)
from repro.telemetry.progress import (
    ProgressReporter,
    iter_telemetry,
    render_event,
    tail_telemetry,
)
from repro.telemetry.reducers import (
    STREAMING_KINDS,
    StreamingBeepTotals,
    StreamingConvergence,
    StreamingFirstBeep,
    StreamingInvariantChecker,
    StreamingInvariantSummary,
    StreamingWaveFronts,
)
from repro.telemetry.spans import (
    SPAN_KINDS,
    Span,
    SpanRecorder,
    chrome_trace,
    load_spans_jsonl,
    spans_from_records,
    write_chrome_trace,
)
from repro.telemetry.spill import (
    DEFAULT_BYTE_BUDGET,
    SpilledTrace,
    SpillingTraceRecorder,
)

__all__ = [
    "DEFAULT_BYTE_BUDGET",
    "Heartbeat",
    "HeartbeatEmitter",
    "MetricsRegistry",
    "ProgressReporter",
    "SPAN_KINDS",
    "STREAMING_KINDS",
    "Span",
    "SpanRecorder",
    "SpilledTrace",
    "SpillingTraceRecorder",
    "StreamingBeepTotals",
    "StreamingConvergence",
    "StreamingFirstBeep",
    "StreamingInvariantChecker",
    "StreamingInvariantSummary",
    "StreamingWaveFronts",
    "chrome_trace",
    "current_heartbeat",
    "current_metrics",
    "iter_telemetry",
    "load_spans_jsonl",
    "render_event",
    "sample_engine_run",
    "spans_from_records",
    "tail_telemetry",
    "use_heartbeat",
    "use_metrics",
    "write_chrome_trace",
]
