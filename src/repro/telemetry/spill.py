"""Out-of-core batch traces: windowed spilling under a byte budget.

:class:`~repro.batch.observers.BatchTraceRecorder` materialises the whole
``(T + 1, R, n)`` state history in memory — ``O(T · R · n)`` bytes, which is
exactly what rules it out at the scales the roadmap targets next.  This
module keeps the recording *windowed*:

* :class:`SpillingTraceRecorder` buffers at most ``window_rows`` rounds
  (``window_rows = byte_budget // (R · n)`` by default) and flushes each
  full window as one compressed-container ``.npz`` segment into a unique
  per-run directory, so trace RAM is ``O(window · R · n)`` regardless of
  how long the run goes;
* :class:`SpilledTrace` is the picklable reader over those segments: its
  :meth:`SpilledTrace.replica` view replays a replica byte-identically to
  :meth:`repro.batch.trace.BatchTrace.replica` (the telemetry parity suite
  enforces this on every backend), :meth:`SpilledTrace.segments` iterates
  the history window by window for out-of-core analysis, and
  :meth:`SpilledTrace.load` rehydrates the full in-memory
  :class:`~repro.batch.trace.BatchTrace` when it fits.

The recorder registers itself as the ``"spill-trace"`` observer kind, so
cells carry it as a pure-data :class:`~repro.batch.observers.ObserverSpec`
(``ObserverSpec("spill-trace", {"directory": ..., "byte_budget": ...})``)
and spawn workers build it like any other observer.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.batch.observers import (
    BatchObserver,
    BatchRunInfo,
    register_observer_kind,
)
from repro.batch.trace import BatchTrace
from repro.errors import ConfigurationError, SimulationError, TraceError

__all__ = [
    "DEFAULT_BYTE_BUDGET",
    "SpilledTrace",
    "SpillingTraceRecorder",
]

#: Default spill window budget: 32 MiB of int8 state rows.
DEFAULT_BYTE_BUDGET = 32 * 1024 * 1024

_MANIFEST = "manifest.json"
_FORMAT = "repro-spilled-trace-v1"


class _SegmentWriter:
    """Accumulate ``(R, n)`` rows and flush full windows as ``.npz`` segments."""

    def __init__(self, run_dir: str, window_rows: int) -> None:
        self.run_dir = run_dir
        self.window_rows = max(1, int(window_rows))
        self.segment_rows: List[int] = []
        self.peak_window_bytes = 0
        self._buffer: List[np.ndarray] = []

    def add_row(self, row: np.ndarray) -> None:
        self._buffer.append(row)
        if len(self._buffer) >= self.window_rows:
            self._flush()

    def _flush(self) -> None:
        if not self._buffer:
            return
        window = np.stack(self._buffer)
        self.peak_window_bytes = max(self.peak_window_bytes, window.nbytes)
        path = os.path.join(
            self.run_dir, f"segment-{len(self.segment_rows):05d}.npz"
        )
        np.savez(path, states=window)
        self.segment_rows.append(window.shape[0])
        self._buffer.clear()

    def finish(self) -> None:
        self._flush()


def _segment_path(directory: str, index: int) -> str:
    return os.path.join(directory, f"segment-{index:05d}.npz")


def _write_manifest(
    directory: str,
    *,
    info: BatchRunInfo,
    rounds_executed: np.ndarray,
    segment_rows: Sequence[int],
    byte_budget: int,
    window_rows: int,
    peak_window_bytes: int,
) -> None:
    manifest = {
        "format": _FORMAT,
        "num_replicas": int(info.num_replicas),
        "n": int(info.n),
        "num_rows": int(sum(segment_rows)),
        "segment_rows": [int(rows) for rows in segment_rows],
        "rounds_executed": [int(r) for r in rounds_executed],
        "beeping_values": [int(v) for v in info.beeping_values],
        "leader_values": [int(v) for v in info.leader_values],
        "protocol_name": info.protocol_name,
        "topology_name": info.topology_name,
        "seeds": [None if s is None else int(s) for s in info.seeds],
        "byte_budget": int(byte_budget),
        "window_rows": int(window_rows),
        "peak_window_bytes": int(peak_window_bytes),
    }
    with open(os.path.join(directory, _MANIFEST), "w", encoding="utf-8") as fh:
        json.dump(manifest, fh)


class SpillingTraceRecorder(BatchObserver):
    """Record a batch trace in bounded memory, spilling windows to disk.

    Parameters
    ----------
    directory:
        Where per-run spill directories are created.  Each recorded run
        gets its own fresh subdirectory (``spill-*``), so the same spec can
        ride every replica of a sequential-backend cell (one recorder per
        replica) without collisions.  ``None`` uses the system temp dir.
    byte_budget:
        Target in-memory window size in bytes.  The window holds
        ``max(1, byte_budget // (R · n))`` rounds of int8 state rows —
        trace RAM is ``O(window · R · n)`` however long the run goes.
    window_rows:
        Explicit window length in rounds, overriding ``byte_budget``.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        byte_budget: int = DEFAULT_BYTE_BUDGET,
        window_rows: Optional[int] = None,
    ) -> None:
        if byte_budget < 1:
            raise ConfigurationError(
                f"byte_budget must be >= 1; got {byte_budget}"
            )
        if window_rows is not None and window_rows < 1:
            raise ConfigurationError(
                f"window_rows must be >= 1; got {window_rows}"
            )
        self._directory = directory
        self._byte_budget = int(byte_budget)
        self._window_rows = None if window_rows is None else int(window_rows)
        self._info: Optional[BatchRunInfo] = None
        self._writer: Optional[_SegmentWriter] = None
        self._rounds_executed: Optional[np.ndarray] = None
        self._run_dir: Optional[str] = None

    def on_start(self, info: BatchRunInfo) -> None:
        self._info = info
        self._rounds_executed = None
        window = self._window_rows
        if window is None:
            window = max(1, self._byte_budget // max(1, info.num_replicas * info.n))
        if self._directory is not None:
            os.makedirs(self._directory, exist_ok=True)
        self._run_dir = tempfile.mkdtemp(prefix="spill-", dir=self._directory)
        self._writer = _SegmentWriter(self._run_dir, window)

    def on_round(
        self,
        round_index: int,
        states: Optional[np.ndarray],
        beeping: Optional[np.ndarray],
        leaders: np.ndarray,
        active_mask: np.ndarray,
    ) -> None:
        if self._writer is None or self._info is None:
            raise SimulationError(
                "SpillingTraceRecorder.on_round called before on_start"
            )
        if states is None:
            raise ConfigurationError(
                "trace recording requires a constant-state protocol; memory "
                "engines report no state array"
            )
        self._writer.add_row(np.asarray(states, dtype=np.int8).copy())

    def on_finish(self, rounds_executed: np.ndarray) -> None:
        self._rounds_executed = np.asarray(rounds_executed, dtype=np.int64).copy()

    @property
    def peak_window_bytes(self) -> int:
        """Largest in-memory window held so far (the bench's peak-RAM proxy)."""
        if self._writer is None:
            return 0
        return self._writer.peak_window_bytes

    def trace(self) -> "SpilledTrace":
        """Finalise the segments and return the on-disk trace reader."""
        if self._writer is None or self._info is None or self._run_dir is None:
            raise SimulationError("no trace has been recorded yet")
        self._writer.finish()
        if not self._writer.segment_rows:
            raise SimulationError("no trace has been recorded yet")
        rounds = self._rounds_executed
        if rounds is None:
            total = sum(self._writer.segment_rows)
            rounds = np.full(self._info.num_replicas, total - 1, dtype=np.int64)
        _write_manifest(
            self._run_dir,
            info=self._info,
            rounds_executed=rounds,
            segment_rows=self._writer.segment_rows,
            byte_budget=self._byte_budget,
            window_rows=self._writer.window_rows,
            peak_window_bytes=self._writer.peak_window_bytes,
        )
        return SpilledTrace(self._run_dir)

    def result(self) -> "SpilledTrace":
        return self.trace()

    @classmethod
    def merge_results(cls, results: Sequence[object]) -> "SpilledTrace":
        """Merge per-run spilled traces into one spilled trace.

        Serves both merge paths of the execution layer: the sequential
        backend's one-``R = 1``-trace-per-replica list and the sharded
        backends' one-multi-replica-trace-per-shard list.  Each run's
        replicas are rehydrated, padded with the frozen final row like
        :meth:`BatchTrace.from_traces`, and respilled as one multi-replica
        directory under the first trace's parent and byte budget — segment
        layout may differ from a whole-cell recording (the window covers
        more replicas per row), but :class:`SpilledTrace` equality is
        content equality, so the merged trace compares equal to it.  (The
        merge itself materialises the replicas — merging is the small-scale
        reference path; bounded-memory recording is the batched engines'
        property.)
        """
        spilled: List[SpilledTrace] = []
        for result in results:
            if not isinstance(result, SpilledTrace):
                raise ConfigurationError(
                    "SpillingTraceRecorder.merge_results expects SpilledTrace "
                    "results (one per replica or per shard)"
                )
            spilled.append(result)
        replicas: List[object] = []
        for trace in spilled:
            if trace.num_replicas == 1:
                replicas.append(trace.replica(0))
            else:
                replicas.extend(trace.to_traces())
        merged = BatchTrace.from_traces(replicas)
        first = spilled[0]
        parent = os.path.dirname(first.directory) or None
        return SpilledTrace.from_batch_trace(
            merged, directory=parent, byte_budget=first.byte_budget
        )


class SpilledTrace:
    """Reader over a spilled trace directory; picklable, window-streamable.

    Mirrors the :class:`~repro.batch.trace.BatchTrace` surface where that is
    possible without loading the whole history: shape properties,
    ``valid_mask``, byte-identical :meth:`replica` views, plus
    :meth:`segments` for out-of-core window replay and :meth:`load` for full
    rehydration.  Equality is *content* equality (two spilled traces with
    different window sizes compare equal when they describe the same
    execution), which is what lets observed cells keep their cross-backend
    observation-parity contract.
    """

    def __init__(self, directory: str) -> None:
        self.directory = os.fspath(directory)
        manifest_path = os.path.join(self.directory, _MANIFEST)
        try:
            with open(manifest_path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except OSError as error:
            raise TraceError(
                f"cannot read spilled-trace manifest {manifest_path!r}: {error}"
            ) from None
        if manifest.get("format") != _FORMAT:
            raise TraceError(
                f"unsupported spilled-trace format {manifest.get('format')!r} "
                f"in {manifest_path!r}"
            )
        self._manifest = manifest

    # ------------------------------------------------------------------ #
    # Shape and metadata (mirroring BatchTrace)
    # ------------------------------------------------------------------ #

    @property
    def num_rounds(self) -> int:
        """Number of recorded transition rounds ``T`` (rows minus round 0)."""
        return int(self._manifest["num_rows"]) - 1

    @property
    def num_replicas(self) -> int:
        """Number of replicas ``R``."""
        return int(self._manifest["num_replicas"])

    @property
    def n(self) -> int:
        """Number of nodes."""
        return int(self._manifest["n"])

    @property
    def rounds_executed(self) -> np.ndarray:
        """``(R,)`` rounds each replica actually executed."""
        return np.asarray(self._manifest["rounds_executed"], dtype=np.int64)

    @property
    def beeping_values(self) -> Tuple[int, ...]:
        """State values classified as beeping."""
        return tuple(int(v) for v in self._manifest["beeping_values"])

    @property
    def leader_values(self) -> Tuple[int, ...]:
        """State values classified as leader."""
        return tuple(int(v) for v in self._manifest["leader_values"])

    @property
    def protocol_name(self) -> str:
        """Protocol provenance metadata."""
        return str(self._manifest["protocol_name"])

    @property
    def topology_name(self) -> str:
        """Topology provenance metadata."""
        return str(self._manifest["topology_name"])

    @property
    def seeds(self) -> Tuple[Optional[int], ...]:
        """Per-replica integer seeds where known, ``None`` otherwise."""
        return tuple(
            None if s is None else int(s) for s in self._manifest["seeds"]
        )

    @property
    def byte_budget(self) -> int:
        """The byte budget the recorder spilled under."""
        return int(self._manifest["byte_budget"])

    @property
    def peak_window_bytes(self) -> int:
        """Largest in-memory window the recorder held (peak-RAM proxy)."""
        return int(self._manifest["peak_window_bytes"])

    def valid_mask(self) -> np.ndarray:
        """``(T + 1, R)`` mask of rows a replica actually executed."""
        rounds = np.arange(self.num_rounds + 1)[:, None]
        return rounds <= self.rounds_executed[None, :]

    # ------------------------------------------------------------------ #
    # Window-streamed access
    # ------------------------------------------------------------------ #

    def segments(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(first_round, window)`` pairs, one spilled segment each.

        ``window`` has shape ``(rows, R, n)``; successive segments tile the
        full ``(T + 1, R, n)`` history in round order.  Only one window is
        in memory at a time — this is the out-of-core replay loop.
        """
        start = 0
        for index, rows in enumerate(self._manifest["segment_rows"]):
            with np.load(_segment_path(self.directory, index)) as payload:
                window = payload["states"]
            yield start, window
            start += int(rows)

    def replica(self, index: int) -> "object":
        """Replica ``index`` as a standalone :class:`ExecutionTrace`.

        Byte-identical to ``BatchTrace.replica(index)`` of the equivalent
        in-memory recording (the telemetry parity suite enforces this):
        segments are sliced replica-first, so at no point is more than one
        ``(rows, R, n)`` window resident.
        """
        from repro.beeping.trace import ExecutionTrace

        if not 0 <= index < self.num_replicas:
            raise TraceError(
                f"replica {index} outside batch of {self.num_replicas}"
            )
        last = int(self.rounds_executed[index])
        parts: List[np.ndarray] = []
        collected = 0
        for start, window in self.segments():
            if start > last:
                break
            stop = min(window.shape[0], last + 1 - start)
            parts.append(np.ascontiguousarray(window[:stop, index, :]))
            collected += stop
            if collected > last:
                break
        states = np.ascontiguousarray(np.concatenate(parts, axis=0))
        return ExecutionTrace(
            states=states,
            beeping_values=self.beeping_values,
            leader_values=self.leader_values,
            protocol_name=self.protocol_name,
            topology_name=self.topology_name,
            seed=self.seeds[index],
        )

    def to_traces(self) -> Tuple[object, ...]:
        """All replicas as standalone traces, in batch order."""
        return tuple(self.replica(r) for r in range(self.num_replicas))

    def load(self) -> BatchTrace:
        """Rehydrate the full in-memory :class:`BatchTrace` (when it fits)."""
        windows = [window for _, window in self.segments()]
        return BatchTrace(
            states=np.concatenate(windows, axis=0),
            rounds_executed=self.rounds_executed,
            beeping_values=self.beeping_values,
            leader_values=self.leader_values,
            protocol_name=self.protocol_name,
            topology_name=self.topology_name,
            seeds=self.seeds,
        )

    def cleanup(self) -> None:
        """Delete the spill directory and its segments."""
        shutil.rmtree(self.directory, ignore_errors=True)

    # ------------------------------------------------------------------ #
    # Assembly and equality
    # ------------------------------------------------------------------ #

    @classmethod
    def from_batch_trace(
        cls,
        trace: BatchTrace,
        directory: Optional[str] = None,
        byte_budget: int = DEFAULT_BYTE_BUDGET,
    ) -> "SpilledTrace":
        """Spill an in-memory :class:`BatchTrace` to a fresh directory."""
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        run_dir = tempfile.mkdtemp(prefix="spill-", dir=directory)
        window = max(
            1, int(byte_budget) // max(1, trace.num_replicas * trace.n)
        )
        writer = _SegmentWriter(run_dir, window)
        for row in trace.states:
            writer.add_row(np.asarray(row, dtype=np.int8))
        writer.finish()
        info = BatchRunInfo(
            num_replicas=trace.num_replicas,
            n=trace.n,
            protocol_name=trace.protocol_name,
            topology_name=trace.topology_name,
            beeping_values=trace.beeping_values,
            leader_values=trace.leader_values,
            seeds=trace.seeds,
        )
        _write_manifest(
            run_dir,
            info=info,
            rounds_executed=trace.rounds_executed,
            segment_rows=writer.segment_rows,
            byte_budget=int(byte_budget),
            window_rows=writer.window_rows,
            peak_window_bytes=writer.peak_window_bytes,
        )
        return cls(run_dir)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpilledTrace):
            return NotImplemented
        return self.load() == other.load()

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        return (
            f"SpilledTrace(R={self.num_replicas}, n={self.n}, "
            f"rounds={self.num_rounds}, "
            f"segments={len(self._manifest['segment_rows'])}, "
            f"dir={self.directory!r})"
        )


register_observer_kind("spill-trace", SpillingTraceRecorder)
