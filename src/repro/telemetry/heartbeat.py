"""In-flight heartbeats: low-overhead liveness + progress from inside engines.

The telemetry layer (``repro.telemetry.progress``) reports per-cell and
per-shard events *after* the work finishes.  A million-node cell grinding
through 20k rounds is a black box until it completes.  This module closes
the gap with a **heartbeat** hook polled every K rounds from inside the
engine loops:

* :class:`Heartbeat` — a frozen snapshot of where a run is *right now*
  (round index, active/converged/leaderless replica counts, cumulative
  replica-rounds, rounds/sec).  Plain picklable data, safe to ship over
  a multiprocessing queue or an HTTP event stream.
* :class:`HeartbeatEmitter` — owns the polling interval and the sink.
  Engines ask ``emitter.due(round_index)`` (a modulo, nothing more) and
  call :meth:`HeartbeatEmitter.beat` only on beat rounds, so the
  per-round cost of an *enabled* heartbeat is one attribute access and
  one integer modulo; the cost of a *disabled* heartbeat is a single
  ``is not None`` check per run (the no-op fast path).
* ``current_heartbeat()`` / ``use_heartbeat(...)`` — the same ambient
  context-variable pattern as :func:`repro.telemetry.metrics.use_metrics`:
  execution backends install an emitter around an engine run without
  threading a parameter through every call site.

Heartbeats are *observability*, not results: they never touch the random
generator and never alter control flow, so records stay byte-identical
whether heartbeats are off, every round, or every 10\\ :sup:`6` rounds —
the parity suite pins this down.  Beats are inherently racy in-flight
information (a beat can arrive after the cell it describes completed);
consumers must not order-depend on them.
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Iterator, Optional

__all__ = [
    "Heartbeat",
    "HeartbeatEmitter",
    "HeartbeatSink",
    "current_heartbeat",
    "use_heartbeat",
]


@dataclass(frozen=True)
class Heartbeat:
    """A point-in-time snapshot of an in-flight engine run.

    ``rounds_advanced`` is cumulative over the emitter's lifetime: an
    emitter installed around a shard that runs one engine per seed keeps
    counting across runs, so a consumer watching a shard sees a monotone
    replica-round counter, not a sawtooth.
    """

    engine: str
    round_index: int
    replicas: int
    active: int
    converged: int
    leaderless: int
    rounds_advanced: int
    rounds_per_second: float
    elapsed_seconds: float
    timestamp: float = field(default=0.0)
    #: Round kernel the emitting engine run is using (``"numpy"``,
    #: ``"numba"``, ...), or ``None`` for engines without a kernel seam.
    kernel: Optional[str] = field(default=None)

    def to_record(self) -> dict:
        """Plain-dict form, ready for JSON encoding."""

        return asdict(self)


HeartbeatSink = Callable[[Heartbeat], None]


class HeartbeatEmitter:
    """Polls engine progress every ``interval`` rounds and feeds a sink.

    The emitter is intentionally dumb: engines decide *what* the numbers
    mean (each engine reports its own notion of active/converged
    replicas), the emitter only decides *when* to sample and derives the
    rates.  One emitter may outlive many engine runs (the sequential
    executor runs one engine per seed); cumulative counters fold
    completed runs into an offset so ``rounds_advanced`` never moves
    backwards.
    """

    __slots__ = (
        "interval",
        "_sink",
        "_started",
        "_last_time",
        "_last_cumulative",
        "_offset",
        "_last_run_rounds",
        "_last_beat",
        "beats_emitted",
    )

    def __init__(self, interval: int, sink: HeartbeatSink) -> None:
        if int(interval) < 1:
            raise ValueError(
                f"heartbeat interval must be a positive integer, got {interval!r}"
            )
        self.interval = int(interval)
        self._sink = sink
        self._started = time.perf_counter()
        self._last_time = self._started
        self._last_cumulative = 0
        self._offset = 0
        self._last_run_rounds = 0
        self._last_beat: Optional[Heartbeat] = None
        self.beats_emitted = 0

    # -- hot path -------------------------------------------------------

    def due(self, round_index: int) -> bool:
        """True when ``round_index`` is a beat round.  One modulo, no state."""

        return round_index % self.interval == 0

    # -- beat construction ---------------------------------------------

    def beat(
        self,
        *,
        engine: str,
        round_index: int,
        replicas: int,
        active: int,
        converged: int,
        leaderless: int,
        rounds_advanced: int,
        kernel: Optional[str] = None,
    ) -> Heartbeat:
        """Record a beat and feed it to the sink.

        ``rounds_advanced`` is run-local (replica-rounds advanced by the
        *current* engine run); the emitter folds finished runs into an
        offset so the emitted counter is cumulative.
        """

        if rounds_advanced < self._last_run_rounds:
            # A new engine run started under the same emitter: bank the
            # previous run's total before the counter resets.
            self._offset += self._last_run_rounds
        self._last_run_rounds = rounds_advanced
        cumulative = self._offset + rounds_advanced

        now = time.perf_counter()
        window = now - self._last_time
        if window > 0.0:
            rate = (cumulative - self._last_cumulative) / window
        else:  # pragma: no cover - perf_counter is monotonic
            rate = 0.0
        self._last_time = now
        self._last_cumulative = cumulative

        heartbeat = Heartbeat(
            engine=engine,
            round_index=int(round_index),
            replicas=int(replicas),
            active=int(active),
            converged=int(converged),
            leaderless=int(leaderless),
            rounds_advanced=int(cumulative),
            rounds_per_second=float(rate),
            elapsed_seconds=now - self._started,
            timestamp=time.time(),
            kernel=kernel,
        )
        self._last_beat = heartbeat
        self.beats_emitted += 1
        self._sink(heartbeat)
        return heartbeat

    def pulse(self, engine: str = "external") -> Heartbeat:
        """Emit a liveness-only beat without round progress.

        Used by code that is alive but not advancing rounds (e.g. a
        fault injector simulating a slow-but-healthy shard): the beat
        re-states the last known counters with a fresh timestamp so a
        liveness watchdog sees the shard is not silent.
        """

        now = time.perf_counter()
        base = self._last_beat
        if base is None:
            heartbeat = Heartbeat(
                engine=engine,
                round_index=0,
                replicas=0,
                active=0,
                converged=0,
                leaderless=0,
                rounds_advanced=self._offset + self._last_run_rounds,
                rounds_per_second=0.0,
                elapsed_seconds=now - self._started,
                timestamp=time.time(),
            )
        else:
            heartbeat = replace(
                base,
                rounds_per_second=0.0,
                elapsed_seconds=now - self._started,
                timestamp=time.time(),
            )
        self._last_time = now
        self._last_beat = heartbeat
        self.beats_emitted += 1
        self._sink(heartbeat)
        return heartbeat

    @property
    def last_beat(self) -> Optional[Heartbeat]:
        return self._last_beat


# -- ambient emitter ----------------------------------------------------
#
# Mirrors repro.telemetry.metrics: engines look the emitter up once per
# run via ``current_heartbeat()``; backends install one around each
# shard execution with ``use_heartbeat``.  The default is None so code
# that never installs an emitter pays one is-not-None check per run.

_CURRENT: "contextvars.ContextVar[Optional[HeartbeatEmitter]]" = contextvars.ContextVar(
    "repro_heartbeat_emitter", default=None
)


def current_heartbeat() -> Optional[HeartbeatEmitter]:
    """The ambient heartbeat emitter, or None when heartbeats are off."""

    return _CURRENT.get()


@contextlib.contextmanager
def use_heartbeat(emitter: Optional[HeartbeatEmitter]) -> Iterator[Optional[HeartbeatEmitter]]:
    """Install ``emitter`` as the ambient heartbeat for the duration.

    Passing ``None`` explicitly shadows any outer emitter (used by the
    no-op fast path to guarantee a nested run stays silent).
    """

    token = _CURRENT.set(emitter)
    try:
        yield emitter
    finally:
        _CURRENT.reset(token)
