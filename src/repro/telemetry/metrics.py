"""The run-metrics registry: counters, gauges and timers for in-flight runs.

Engines and execution backends are instrumented *pull-style*: they keep
plain integer counters on themselves (a cache-hit increment must not pay a
context-variable lookup per round) and sample everything into the ambient
:class:`MetricsRegistry` exactly once, at the end of a run.  The registry is
installed with :func:`use_metrics` (a context manager over a
``contextvars.ContextVar``) and read with :func:`current_metrics`; when no
registry is installed every sampling call is a no-op, so the no-observer
hot path costs one context-variable read per *run*, not per round.

This module deliberately imports nothing from the rest of the package — it
sits below the engines, the execution layer and the observers, all of which
import it.
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from typing import Dict, Iterator, Mapping, Optional, Sequence

__all__ = [
    "MetricsRegistry",
    "current_metrics",
    "merge_snapshots",
    "sample_engine_run",
    "use_metrics",
]


class MetricsRegistry:
    """Accumulate counters, gauges and timers for one unit of work.

    * **counters** add up (``count``): rounds advanced, replicas retired,
      cache hits;
    * **gauges** keep the last written value (``gauge``): rates, ratios,
      rounds-per-second;
    * **timers** accumulate seconds (``add_time`` / ``time``): per-phase
      wall time.

    The registry itself is dumb on purpose: no locks (one registry per
    executing cell, never shared across threads), no repro imports, and a
    plain-dict :meth:`snapshot` so the sampled values pickle cleanly from a
    spawn worker back to the parent process.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.timers: Dict[str, float] = {}

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at 0)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = value

    def add_time(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to timer ``name`` (creating it at 0.0)."""
        self.timers[name] = self.timers.get(name, 0.0) + float(seconds)

    @contextlib.contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Context manager accumulating the wrapped block into timer ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (counters/timers add, gauges overwrite)."""
        for name, value in other.counters.items():
            self.count(name, value)
        for name, value in other.gauges.items():
            self.gauge(name, value)
        for name, value in other.timers.items():
            self.add_time(name, value)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Plain-dict copy of everything sampled so far (picklable, JSON-able)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": dict(self.timers),
        }

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.timers)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, timers={len(self.timers)})"
        )


def merge_snapshots(
    snapshots: "Sequence[Optional[Mapping[str, Mapping[str, float]]]]",
) -> Optional[Dict[str, Dict[str, float]]]:
    """Merge plain-dict registry snapshots with :meth:`MetricsRegistry.merge`
    semantics: counters and timers add, gauges keep the last written value.

    Used by the execution layer when a sharded cell's per-shard snapshots
    (possibly pickled back from worker processes) are folded into one
    per-cell snapshot.  ``None`` entries are skipped; returns ``None`` when
    every snapshot is ``None`` (no registry was installed anywhere).
    """
    merged: Optional[Dict[str, Dict[str, float]]] = None
    for snapshot in snapshots:
        if snapshot is None:
            continue
        if merged is None:
            merged = {"counters": {}, "gauges": {}, "timers": {}}
        for section, combine in (
            ("counters", True),
            ("timers", True),
            ("gauges", False),
        ):
            for name, value in dict(snapshot.get(section, {})).items():
                if combine:
                    merged[section][name] = merged[section].get(name, 0) + value
                else:
                    merged[section][name] = value
    return merged


_CURRENT: contextvars.ContextVar[Optional[MetricsRegistry]] = contextvars.ContextVar(
    "repro_metrics_registry", default=None
)


def current_metrics() -> Optional[MetricsRegistry]:
    """The ambient registry installed by :func:`use_metrics`, or ``None``."""
    return _CURRENT.get()


@contextlib.contextmanager
def use_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as the ambient metrics sink for the block.

    Nests: an inner ``use_metrics`` shadows the outer registry and restores
    it on exit, so a batched cell executor that falls back to the sequential
    executor keeps each execution's samples separate.
    """
    token = _CURRENT.set(registry)
    try:
        yield registry
    finally:
        _CURRENT.reset(token)


def sample_engine_run(
    engine: str,
    *,
    rounds_advanced: int,
    replicas: int,
    wall_seconds: float,
    replicas_converged: Optional[int] = None,
    replicas_leaderless: Optional[int] = None,
    cache_stats: Optional[Mapping[str, float]] = None,
    kernel: Optional[str] = None,
    gauges: Optional[Mapping[str, float]] = None,
) -> None:
    """Sample one finished engine run into the ambient registry (if any).

    Called once at the end of every engine ``run()`` — the only
    engine-side telemetry touch point, so the per-round hot path stays
    untouched.  ``cache_stats`` carries the engine's plain-int cache
    counters (swap-cache hits/misses, topology-pool and round-memo rates
    from :mod:`repro.dynamics`).  ``kernel`` names the round kernel the
    run actually used (counted as ``engine.kernel.<name>`` so fallbacks
    are visible per run); ``gauges`` carries engine-chosen point-in-time
    values (adjacency representation, kernel compile seconds) verbatim.
    """
    registry = current_metrics()
    if registry is None:
        return
    registry.count("engine.runs", 1)
    if kernel is not None:
        registry.count(f"engine.kernel.{kernel}", 1)
    if gauges:
        for name, value in gauges.items():
            registry.gauge(name, float(value))
    registry.count("engine.rounds_advanced", rounds_advanced)
    registry.count("engine.replicas", replicas)
    registry.add_time(f"engine.{engine}.wall_seconds", wall_seconds)
    registry.gauge(
        "engine.rounds_per_second",
        rounds_advanced / wall_seconds if wall_seconds > 0 else 0.0,
    )
    if replicas_converged is not None:
        registry.count("engine.replicas_converged", replicas_converged)
    if replicas_leaderless is not None:
        registry.count("engine.replicas_leaderless", replicas_leaderless)
    if cache_stats:
        for name, value in cache_stats.items():
            registry.count(f"cache.{name}", value)
        for kind in ("swap_cache", "topology_pool", "round_memo"):
            hits = cache_stats.get(f"{kind}_hits", 0)
            misses = cache_stats.get(f"{kind}_misses", 0)
            total = hits + misses
            if total:
                registry.gauge(f"cache.{kind}_hit_rate", hits / total)
