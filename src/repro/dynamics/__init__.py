"""Dynamic-graph scenarios: edge churn, cuts and rewiring under a protocol.

The paper's guarantees hold on a *static* connected graph; this package
makes the other side of that boundary executable.  A
:class:`TopologySchedule` tells the engines which communication graph is in
effect during each round, churn adversaries generate those graphs (randomly
or by observing the protocol state), and serialisable :class:`ScheduleSpec`
descriptions carry whole dynamic scenarios through every
:mod:`repro.exec` backend — including process pools.

See :mod:`repro.dynamics.schedules` for the schedule contract and
:mod:`repro.dynamics.churn` for the adversaries and the incremental
adjacency bookkeeping.
"""

from repro.dynamics.churn import (
    AdjacencyCache,
    ChurnAdversary,
    EdgeDelta,
    LeaderIsolatingChurn,
    ObliviousEdgeChurn,
    normalize_edge,
)
from repro.dynamics.schedules import (
    SCHEDULE_KINDS,
    AdversarialCutSchedule,
    EdgeChurnSchedule,
    InterpolationSchedule,
    PeriodicRewiringSchedule,
    ScheduleSpec,
    StateAwareChurnSchedule,
    StaticSchedule,
    TopologySchedule,
    build_schedule,
    require_same_node_count,
)

__all__ = [
    "AdjacencyCache",
    "AdversarialCutSchedule",
    "ChurnAdversary",
    "EdgeChurnSchedule",
    "EdgeDelta",
    "InterpolationSchedule",
    "LeaderIsolatingChurn",
    "ObliviousEdgeChurn",
    "PeriodicRewiringSchedule",
    "SCHEDULE_KINDS",
    "ScheduleSpec",
    "StateAwareChurnSchedule",
    "StaticSchedule",
    "TopologySchedule",
    "build_schedule",
    "normalize_edge",
    "require_same_node_count",
]
