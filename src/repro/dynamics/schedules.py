"""Time-varying topologies: the :class:`TopologySchedule` contract and schedules.

A *topology schedule* answers one question for the engines: *which graph is
in effect during round ``r``?*  Round indices are the engines' own — round
``r >= 1`` is the transition from the configuration after round ``r - 1``,
and ``topology_at(0)`` is the initial graph.  Node count is invariant across
swaps (nodes are the protocol's agents; only the communication edges move) —
every schedule validates this and raises
:class:`~repro.errors.ConfigurationError` otherwise, and the engines
re-check it at swap time.

Schedules come in two determinism classes:

* **replica-independent** schedules (everything except
  :class:`StateAwareChurnSchedule`) are pure functions of the round index.
  They memoise one :class:`~repro.graphs.topology.Topology` per round and
  deduplicate by edge-set signature, so an adjacency is rebuilt exactly once
  per *distinct* graph no matter how many replicas or engine runs replay the
  schedule — one rebuild per round serves all ``R`` replicas of a batch, and
  all seeds of a sequential sweep;
* **state-aware** schedules observe the replica's state vector, so their
  graph sequence is per-run: the engines call :meth:`~TopologySchedule.begin_run`
  before every execution and feed the current states to ``topology_at``.
  The batched engine restricts them to single-replica batches (all replicas
  of a batch share one adjacency per round by construction).

Serialisable descriptions (:class:`ScheduleSpec`) mirror
:class:`~repro.experiments.config.GraphSpec`: plain data that pickles into
an :class:`~repro.exec.ExecutionCell` and is rebuilt via
:func:`build_schedule` inside whichever process executes the cell, so
dynamic sweeps shard across ``process:N`` backends like any other cell.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.rng import as_rng
from repro.dynamics.churn import (
    AdjacencyCache,
    ChurnAdversary,
    EdgeDelta,
    LeaderIsolatingChurn,
    ObliviousEdgeChurn,
    normalize_edge,
)
from repro.errors import ConfigurationError
from repro.graphs.topology import Edge, Topology


class TopologyPool:
    """Bounded LRU dedup pool for materialised topology snapshots.

    Churn schedules deduplicate snapshots by edge-set signature so that a
    revisited graph is the *same object* (engine-side adjacency caches key
    on identity).  Random churn rarely revisits an edge set, though, so an
    unbounded pool would gain one ``Topology`` per round for the lifetime of
    the schedule — a budget-exhausting run (hundreds of thousands of
    rounds) would hold gigabytes.  The pool therefore keeps the most
    recently used ``limit`` snapshots; an evicted edge set is simply
    rebuilt on its next visit (O(n + m), the price of one ordinary swap).
    """

    def __init__(self, limit: int = 256) -> None:
        if limit < 1:
            raise ConfigurationError(f"pool limit must be >= 1; got {limit}")
        self._limit = int(limit)
        self._entries: "OrderedDict[FrozenSet[Edge], Topology]" = OrderedDict()
        # Plain-int hit/miss counters sampled by the telemetry layer at the
        # end of a run; incrementing ints here keeps the per-swap cost nil.
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self, signature: FrozenSet[Edge], factory: Callable[[], Topology]
    ) -> Topology:
        """The pooled topology for ``signature``, built via ``factory`` on miss."""
        topology = self._entries.get(signature)
        if topology is None:
            self.misses += 1
            topology = factory()
            self._entries[signature] = topology
            if len(self._entries) > self._limit:
                self._entries.popitem(last=False)
        else:
            self.hits += 1
            self._entries.move_to_end(signature)
        return topology


def require_same_node_count(base_n: int, topology: Topology, what: str) -> None:
    """Raise :class:`ConfigurationError` unless ``topology`` has ``base_n`` nodes."""
    if topology.n != base_n:
        raise ConfigurationError(
            f"{what} must preserve the node count: expected n={base_n}, "
            f"got n={topology.n} ({topology.name})"
        )


class TopologySchedule(abc.ABC):
    """The engine-facing contract for a time-varying communication graph."""

    #: Whether :meth:`topology_at` observes the protocol state vector.
    state_aware: bool = False

    #: Whether the schedule never changes the graph (today's fast path).
    is_static: bool = False

    @property
    @abc.abstractmethod
    def n(self) -> int:
        """Number of nodes of every topology the schedule yields."""

    def begin_run(self) -> None:
        """Hook called by the engines before each execution (per replica for
        the sequential engine, per batch for the batched one).  Replica-
        independent schedules keep their memoised rounds across runs."""

    @abc.abstractmethod
    def topology_at(
        self, round_index: int, states: Optional[np.ndarray] = None
    ) -> Topology:
        """The graph in effect during ``round_index`` (``0`` = initial).

        ``states`` is the current per-node state vector, passed by the
        engines on every call; only state-aware schedules read it, and they
        must treat it as read-only.
        """

    def cache_stats(self) -> Dict[str, int]:
        """Cache hit/miss counters for the telemetry layer (may be empty).

        Schedules that pool snapshots report ``topology_pool_hits`` /
        ``topology_pool_misses`` (and churn schedules additionally
        ``round_memo_hits`` / ``round_memo_misses``); counters are
        cumulative over the schedule's lifetime.
        """
        return {}

    def _check_round(self, round_index: int) -> int:
        if round_index < 0:
            raise ConfigurationError(
                f"round index must be >= 0; got {round_index}"
            )
        return int(round_index)


class StaticSchedule(TopologySchedule):
    """The identity schedule: the same graph every round.

    Running an engine with ``schedule=StaticSchedule(topology)`` is
    bit-identical to running it without a schedule — the dynamic code path
    fetches the same topology object each round, so the arithmetic and the
    RNG stream are unchanged.
    """

    is_static = True

    def __init__(self, topology: Topology) -> None:
        self._topology = topology

    @property
    def n(self) -> int:
        return self._topology.n

    def topology_at(
        self, round_index: int, states: Optional[np.ndarray] = None
    ) -> Topology:
        self._check_round(round_index)
        return self._topology


class PeriodicRewiringSchedule(TopologySchedule):
    """Cycle through a fixed list of same-``n`` topologies.

    The graph switches every ``period`` rounds:
    ``topology_at(r) = topologies[(r // period) % len(topologies)]``.
    """

    def __init__(self, topologies: Sequence[Topology], period: int = 1) -> None:
        topologies = tuple(topologies)
        if not topologies:
            raise ConfigurationError(
                "a periodic rewiring schedule needs at least one topology"
            )
        if period < 1:
            raise ConfigurationError(f"period must be >= 1; got {period}")
        base_n = topologies[0].n
        for topology in topologies[1:]:
            require_same_node_count(base_n, topology, "periodic rewiring")
        self._topologies = topologies
        self._period = int(period)

    @property
    def n(self) -> int:
        return self._topologies[0].n

    def topology_at(
        self, round_index: int, states: Optional[np.ndarray] = None
    ) -> Topology:
        round_index = self._check_round(round_index)
        return self._topologies[(round_index // self._period) % len(self._topologies)]


class InterpolationSchedule(TopologySchedule):
    """Morph ``base`` into ``target`` over ``rounds`` rounds.

    At round ``r`` the live graph keeps the edges common to both endpoints,
    has dropped the first ``f·|base \\ target|`` base-only edges and gained
    the first ``f·|target \\ base|`` target-only edges (in sorted order),
    where ``f = min(1, r / rounds)``.  ``InterpolationSchedule(cycle,
    clique, 100)`` is the canonical densification scenario: the graph's
    diameter collapses while the protocol runs.
    """

    def __init__(self, base: Topology, target: Topology, rounds: int) -> None:
        require_same_node_count(base.n, target, "interpolation")
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1; got {rounds}")
        self._base = base
        self._target = target
        self._rounds = int(rounds)
        base_edges = set(base.edges)
        target_edges = set(target.edges)
        self._shared = tuple(sorted(base_edges & target_edges))
        self._to_remove = tuple(sorted(base_edges - target_edges))
        self._to_add = tuple(sorted(target_edges - base_edges))
        self._snapshots: Dict[Tuple[int, int], Topology] = {}

    @property
    def n(self) -> int:
        return self._base.n

    def topology_at(
        self, round_index: int, states: Optional[np.ndarray] = None
    ) -> Topology:
        round_index = self._check_round(round_index)
        fraction = min(1.0, round_index / self._rounds)
        num_removed = int(round(fraction * len(self._to_remove)))
        num_added = int(round(fraction * len(self._to_add)))
        if num_removed == 0 and num_added == 0:
            return self._base
        if num_removed == len(self._to_remove) and num_added == len(self._to_add):
            return self._target
        key = (num_removed, num_added)
        snapshot = self._snapshots.get(key)
        if snapshot is None:
            edges = (
                self._shared
                + self._to_remove[num_removed:]
                + self._to_add[:num_added]
            )
            snapshot = Topology(
                self.n,
                edges,
                name=(
                    f"interp({self._base.name}->{self._target.name},"
                    f"+{num_added}/-{num_removed})"
                ),
                require_connected=False,
            )
            self._snapshots[key] = snapshot
        return snapshot


class AdversarialCutSchedule(TopologySchedule):
    """Repeatedly sever (and restore) a set of cut edges.

    Within every window of ``period`` rounds, the cut edges are *down* for
    the first ``down_rounds`` rounds and restored for the rest.  By default
    the cut is the graph's first bridge, so each down-phase disconnects the
    graph and stalls wave propagation between the two sides — the sharpest
    executable form of the paper's static-graph assumption.  On a
    bridgeless graph (a cycle, a clique) the default falls back to the
    graph's first edge: the down-phase then merely perturbs the topology
    instead of disconnecting it.  Pass ``edges`` explicitly to cut a
    specific set.
    """

    def __init__(
        self,
        base: Topology,
        edges: Optional[Sequence[Edge]] = None,
        period: int = 8,
        down_rounds: int = 4,
    ) -> None:
        if period < 1:
            raise ConfigurationError(f"period must be >= 1; got {period}")
        if not 0 < down_rounds <= period:
            raise ConfigurationError(
                f"down_rounds must be in 1..period; got {down_rounds} "
                f"with period {period}"
            )
        if edges is None:
            edges = self._default_cut(base)
        cut = tuple(sorted(normalize_edge(u, v) for u, v in edges))
        if not cut:
            raise ConfigurationError("an adversarial cut needs at least one edge")
        present = set(base.edges)
        for edge in cut:
            if edge not in present:
                raise ConfigurationError(
                    f"cut edge {edge} is not an edge of {base.name}"
                )
        self._base = base
        self._cut = cut
        self._period = int(period)
        self._down_rounds = int(down_rounds)
        remaining = tuple(edge for edge in base.edges if edge not in set(cut))
        self._down = Topology(
            base.n,
            remaining,
            name=f"{base.name}-cut{list(cut)}",
            require_connected=False,
        )

    @staticmethod
    def _default_cut(base: Topology) -> Tuple[Edge, ...]:
        """The first bridge, or the first edge when the graph has none."""
        import networkx as nx

        for u, v in sorted(nx.bridges(base.to_networkx())):
            return (normalize_edge(u, v),)
        if not base.edges:
            raise ConfigurationError(
                f"{base.name} has no edges; nothing to cut"
            )
        return (base.edges[0],)

    @property
    def n(self) -> int:
        return self._base.n

    @property
    def cut_edges(self) -> Tuple[Edge, ...]:
        """The edges severed during each down-phase."""
        return self._cut

    def topology_at(
        self, round_index: int, states: Optional[np.ndarray] = None
    ) -> Topology:
        round_index = self._check_round(round_index)
        if round_index == 0:
            return self._base
        if (round_index - 1) % self._period < self._down_rounds:
            return self._down
        return self._base


class EdgeChurnSchedule(TopologySchedule):
    """Seeded random edge churn, replayed from a memoised delta log.

    An oblivious :class:`~repro.dynamics.churn.ChurnAdversary` is advanced
    once per round against an incremental frontier
    :class:`AdjacencyCache`, and the resulting :class:`EdgeDelta` per round
    is recorded — randomness is drawn exactly once per round, so the
    schedule is a deterministic function of ``(base, adversary, seed)``:
    two instances with the same parameters yield identical graph sequences
    on any engine, backend or query order.

    Serving ``topology_at`` goes through a bounded round memo (O(1) for
    every replica after the first, which is what makes sequential dynamic
    sweeps cheap), falling back to replaying the delta log on a cursor
    cache (O(delta) per step; a replica restarting at round 1 resets the
    cursor once) with snapshots deduplicated through a bounded
    :class:`TopologyPool` — one adjacency rebuild per round serves all
    replicas and revisited edge sets reuse the identical ``Topology``
    object while cached.  Live memory is bounded by
    ``ROUND_MEMO_LIMIT`` + ``POOL_LIMIT`` snapshots (the memo is the
    dominant bound — pooled entries it references stay alive) plus the
    tiny delta log, even when a run exhausts a six-figure round budget.
    """

    #: Maximum number of distinct topology snapshots kept alive.
    POOL_LIMIT = 256

    #: Maximum number of rounds memoised for O(1) re-serving.  Covers the
    #: whole horizon of typical dynamic sweeps (every replica after the
    #: first replays pure dictionary hits); longer runs degrade gracefully
    #: to the delta-replay cursor instead of growing without bound.
    ROUND_MEMO_LIMIT = 2048

    def __init__(
        self,
        base: Topology,
        adversary: Optional[ChurnAdversary] = None,
        seed: int = 0,
        add_per_round: int = 1,
        remove_per_round: int = 1,
        preserve_connectivity: bool = True,
    ) -> None:
        if adversary is None:
            adversary = ObliviousEdgeChurn(
                remove_per_round=remove_per_round,
                add_per_round=add_per_round,
                preserve_connectivity=preserve_connectivity,
            )
        if adversary.state_aware:
            raise ConfigurationError(
                "EdgeChurnSchedule shares one graph sequence across replicas, "
                "so its adversary must be oblivious; wrap state-aware "
                "adversaries in StateAwareChurnSchedule instead"
            )
        self._base = base
        self._adversary = adversary
        self._seed = int(seed)
        self._rng = as_rng(self._seed)
        self._frontier = AdjacencyCache(base)
        self._deltas: List[EdgeDelta] = []
        self._replay = AdjacencyCache(base)
        self._replay_round = 0
        self._pool = TopologyPool(self.POOL_LIMIT)
        # Seed the pool with the base graph, so a churn round that happens
        # to restore the initial edge set reuses the identical object.
        self._pool.get(frozenset(base.edges), lambda: base)
        self._round_memo: "OrderedDict[int, Topology]" = OrderedDict()
        self._memo_hits = 0
        self._memo_misses = 0

    @property
    def n(self) -> int:
        return self._base.n

    @property
    def seed(self) -> int:
        """The churn RNG seed (provenance)."""
        return self._seed

    def cache_stats(self) -> Dict[str, int]:
        return {
            "topology_pool_hits": self._pool.hits,
            "topology_pool_misses": self._pool.misses,
            "round_memo_hits": self._memo_hits,
            "round_memo_misses": self._memo_misses,
        }

    def delta_at(self, round_index: int) -> EdgeDelta:
        """The churn applied when entering ``round_index`` (computed on demand)."""
        round_index = self._check_round(round_index)
        if round_index == 0:
            return EdgeDelta()
        self._ensure_deltas(round_index)
        return self._deltas[round_index - 1]

    def _ensure_deltas(self, round_index: int) -> None:
        """Advance the frontier (and consume randomness) up to ``round_index``."""
        while len(self._deltas) < round_index:
            self._deltas.append(
                self._adversary.propose(
                    len(self._deltas) + 1, self._frontier, self._rng
                )
            )

    def topology_at(
        self, round_index: int, states: Optional[np.ndarray] = None
    ) -> Topology:
        round_index = self._check_round(round_index)
        if round_index == 0:
            return self._base
        memo = self._round_memo
        memoised = memo.get(round_index)
        if memoised is not None:
            self._memo_hits += 1
            memo.move_to_end(round_index)
            return memoised
        self._memo_misses += 1
        self._ensure_deltas(round_index)
        if round_index < self._replay_round:
            self._replay = AdjacencyCache(self._base)
            self._replay_round = 0
        while self._replay_round < round_index:
            self._replay.apply(self._deltas[self._replay_round])
            self._replay_round += 1
        replay = self._replay
        topology = self._pool.get(
            replay.signature(),
            lambda: replay.snapshot(
                name=f"{self._base.name}~churn[seed={self._seed}]@r{round_index}"
            ),
        )
        memo[round_index] = topology
        if len(memo) > self.ROUND_MEMO_LIMIT:
            memo.popitem(last=False)
        return topology


class StateAwareChurnSchedule(TopologySchedule):
    """Per-run schedule driven by a state-aware churn adversary.

    The graph sequence depends on the states of the replica under attack, so
    the schedule is reset by :meth:`begin_run` (fresh RNG from the same seed,
    fresh adjacency cache) and must be advanced one round at a time — the
    engines do exactly that.  The batched engine only accepts it for
    single-replica batches.
    """

    state_aware = True

    #: Maximum number of distinct topology snapshots kept alive.
    POOL_LIMIT = 256

    def __init__(
        self,
        base: Topology,
        adversary: Optional[ChurnAdversary] = None,
        seed: int = 0,
    ) -> None:
        if adversary is None:
            adversary = LeaderIsolatingChurn()
        if not adversary.state_aware:
            raise ConfigurationError(
                "StateAwareChurnSchedule needs a state-aware adversary; "
                "oblivious adversaries belong in EdgeChurnSchedule"
            )
        self._base = base
        self._adversary = adversary
        self._seed = int(seed)
        self._pool = TopologyPool(self.POOL_LIMIT)
        self._pool.get(frozenset(base.edges), lambda: base)
        self.begin_run()

    @property
    def n(self) -> int:
        return self._base.n

    def cache_stats(self) -> Dict[str, int]:
        return {
            "topology_pool_hits": self._pool.hits,
            "topology_pool_misses": self._pool.misses,
        }

    def begin_run(self) -> None:
        self._rng = as_rng(self._seed)
        self._cache = AdjacencyCache(self._base)
        self._adversary.begin_run()
        self._last_round = 0

    def topology_at(
        self, round_index: int, states: Optional[np.ndarray] = None
    ) -> Topology:
        round_index = self._check_round(round_index)
        if round_index == 0:
            return self._base
        if states is None:
            raise ConfigurationError(
                "state-aware schedules need the current state vector"
            )
        if round_index != self._last_round + 1:
            raise ConfigurationError(
                f"state-aware schedules advance one round at a time; "
                f"expected round {self._last_round + 1}, got {round_index}"
            )
        self._adversary.propose(round_index, self._cache, self._rng, states=states)
        self._last_round = round_index
        cache = self._cache
        return self._pool.get(
            cache.signature(),
            lambda: cache.snapshot(
                name=f"{self._base.name}~aware[seed={self._seed}]"
            ),
        )


# --------------------------------------------------------------------------- #
# Serialisable schedule specifications
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ScheduleSpec:
    """Pure-data description of a schedule, relative to a cell's base graph.

    Mirrors :class:`~repro.experiments.config.GraphSpec`: plain picklable
    data so that :class:`~repro.exec.ExecutionCell` objects carrying a
    dynamic scenario still ship to spawn-started worker processes, where
    :func:`build_schedule` rebuilds the schedule deterministically.
    """

    kind: str
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in SCHEDULE_KINDS:
            raise ConfigurationError(
                f"unknown schedule kind {self.kind!r}; "
                f"known: {', '.join(sorted(SCHEDULE_KINDS))}"
            )
        object.__setattr__(self, "params", dict(self.params))

    @property
    def label(self) -> str:
        """Display label such as ``"edge-churn[k=2,seed=7]"``."""
        if not self.params:
            return self.kind
        rendered = ",".join(
            f"{key}={value}" for key, value in sorted(self.params.items())
        )
        return f"{self.kind}[{rendered}]"


def _build_static(base: Topology) -> TopologySchedule:
    return StaticSchedule(base)


def _build_edge_churn(
    base: Topology,
    add_per_round: int = 1,
    remove_per_round: int = 1,
    seed: int = 0,
    preserve_connectivity: bool = True,
) -> TopologySchedule:
    return EdgeChurnSchedule(
        base,
        seed=seed,
        add_per_round=add_per_round,
        remove_per_round=remove_per_round,
        preserve_connectivity=preserve_connectivity,
    )


def _build_cut(
    base: Topology,
    edge: Optional[Sequence[int]] = None,
    period: int = 8,
    down_rounds: int = 4,
) -> TopologySchedule:
    edges = None if edge is None else (normalize_edge(edge[0], edge[1]),)
    return AdversarialCutSchedule(
        base, edges=edges, period=period, down_rounds=down_rounds
    )


def _build_interpolate(
    base: Topology,
    target_family: str = "clique",
    rounds: int = 64,
    seed: int = 0,
) -> TopologySchedule:
    from repro.graphs.generators import make_graph

    target = make_graph(target_family, base.n, rng=as_rng(seed))
    require_same_node_count(base.n, target, "interpolation target")
    return InterpolationSchedule(base, target, rounds=rounds)


def _build_periodic_rewire(
    base: Topology,
    families: Sequence[str] = ("cycle", "path"),
    period: int = 16,
    seed: int = 0,
) -> TopologySchedule:
    from repro.graphs.generators import make_graph

    topologies = [base]
    for index, family in enumerate(families):
        topology = make_graph(family, base.n, rng=as_rng(int(seed) + index))
        require_same_node_count(base.n, topology, f"periodic rewiring to {family!r}")
        topologies.append(topology)
    return PeriodicRewiringSchedule(topologies, period=period)


def _build_state_aware_churn(
    base: Topology,
    cut_per_round: int = 2,
    seed: int = 0,
) -> TopologySchedule:
    return StateAwareChurnSchedule(
        base, adversary=LeaderIsolatingChurn(cut_per_round=cut_per_round), seed=seed
    )


#: Registry of spec kinds to builder callables ``(base, **params) -> schedule``.
SCHEDULE_KINDS: Dict[str, Callable[..., TopologySchedule]] = {
    "static": _build_static,
    "edge-churn": _build_edge_churn,
    "cut": _build_cut,
    "interpolate": _build_interpolate,
    "periodic-rewire": _build_periodic_rewire,
    "leader-isolating": _build_state_aware_churn,
}


def build_schedule(
    spec: "ScheduleSpec | TopologySchedule", base: Topology
) -> TopologySchedule:
    """Instantiate a schedule for ``base`` from a spec (or pass one through).

    Raises
    ------
    ConfigurationError
        If the spec kind is unknown, a parameter is invalid, or the built
        schedule does not preserve ``base``'s node count.
    """
    if isinstance(spec, TopologySchedule):
        if spec.n != base.n:
            raise ConfigurationError(
                f"schedule is defined for n={spec.n} nodes but the base "
                f"graph {base.name} has n={base.n}"
            )
        return spec
    if not isinstance(spec, ScheduleSpec):
        raise ConfigurationError(
            f"expected a ScheduleSpec or TopologySchedule; got {type(spec).__name__}"
        )
    builder = SCHEDULE_KINDS[spec.kind]
    try:
        return builder(base, **spec.params)
    except TypeError as error:
        raise ConfigurationError(
            f"invalid parameters for schedule kind {spec.kind!r}: {error}"
        ) from None
