"""Edge-churn adversaries and the incremental adjacency bookkeeping behind them.

A dynamic-graph scenario is driven by an *adversary* that, once per round,
proposes a set of edge insertions and deletions (an :class:`EdgeDelta`)
against the current communication graph.  Two families ship:

* **oblivious** adversaries (:class:`ObliviousEdgeChurn`) draw their deltas
  from a seeded RNG without looking at the protocol state.  Their topology
  sequence is a pure function of the round index, so the resulting schedules
  are shared across replicas and across engines — the batched engine and the
  sequential engine see bit-identical graphs, and one adjacency rebuild per
  round serves all ``R`` replicas of a batch;
* **state-aware** adversaries (:class:`LeaderIsolatingChurn`) observe the
  current state vector (e.g. to cut the edges around surviving leaders and
  stall their elimination waves).  Their topology sequence depends on the
  replica being attacked, so the engines restrict them to single-replica
  runs (see :class:`~repro.dynamics.schedules.StateAwareChurnSchedule`).

The :class:`AdjacencyCache` owns the mutable edge set between rounds: deltas
are applied incrementally (O(delta) bookkeeping instead of an O(n + m)
rebuild), connectivity probes run on the live adjacency sets, and a
:class:`~repro.graphs.topology.Topology` is only materialised when a round's
edge set is actually new — schedules additionally deduplicate snapshots by
edge-set signature, so revisited graphs (periodic cuts, restored edges) are
rebuilt exactly once.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.states import LEADER_STATES
from repro.errors import ConfigurationError
from repro.graphs.topology import Edge, Topology


def normalize_edge(u: int, v: int) -> Edge:
    """Canonical undirected form ``(min(u, v), max(u, v))``."""
    u, v = int(u), int(v)
    return (u, v) if u < v else (v, u)


@dataclass(frozen=True)
class EdgeDelta:
    """One round's worth of edge churn: insertions and deletions.

    Edges are stored in canonical ``(min, max)`` form and sorted, so two
    deltas describing the same churn compare equal regardless of how the
    adversary enumerated them.
    """

    added: Tuple[Edge, ...] = ()
    removed: Tuple[Edge, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "added", tuple(sorted(normalize_edge(u, v) for u, v in self.added))
        )
        object.__setattr__(
            self,
            "removed",
            tuple(sorted(normalize_edge(u, v) for u, v in self.removed)),
        )

    @property
    def is_empty(self) -> bool:
        """Whether the delta changes nothing."""
        return not self.added and not self.removed


class AdjacencyCache:
    """Mutable adjacency bookkeeping for one evolving graph.

    The cache applies :class:`EdgeDelta` objects in O(delta) time, answers
    connectivity probes on its live adjacency sets, and materialises
    :class:`~repro.graphs.topology.Topology` snapshots on demand.  Snapshots
    are built with ``require_connected=False``: churn is allowed to
    disconnect the graph — studying what that does to the protocol is the
    point of the subsystem.
    """

    def __init__(self, base: Topology) -> None:
        self._n = base.n
        self._base_name = base.name
        self._edges: Set[Edge] = set(base.edges)
        self._adjacency: List[Set[int]] = [set(neigh) for neigh in base.adjacency_lists()]
        self._sorted_edges: Optional[Tuple[Edge, ...]] = None

    @property
    def n(self) -> int:
        """Number of nodes (invariant under churn)."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Current number of undirected edges."""
        return len(self._edges)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is currently an edge."""
        return normalize_edge(u, v) in self._edges

    def degree(self, node: int) -> int:
        """Current degree of ``node``."""
        return len(self._adjacency[node])

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """The current neighbours of ``node``, sorted."""
        return tuple(sorted(self._adjacency[node]))

    def edges(self) -> Tuple[Edge, ...]:
        """The current edge set in sorted canonical order (cached)."""
        if self._sorted_edges is None:
            self._sorted_edges = tuple(sorted(self._edges))
        return self._sorted_edges

    def signature(self) -> FrozenSet[Edge]:
        """Hashable identity of the current edge set (for snapshot dedup)."""
        return frozenset(self._edges)

    def apply(self, delta: EdgeDelta) -> None:
        """Apply one round's churn incrementally.

        Raises
        ------
        ConfigurationError
            If the delta removes a non-edge, adds an existing edge or a
            self-loop, or references nodes outside the graph — adversaries
            are expected to propose consistent deltas.
        """
        for u, v in delta.removed:
            if (u, v) not in self._edges:
                raise ConfigurationError(
                    f"churn delta removes non-edge ({u}, {v})"
                )
            self._edges.discard((u, v))
            self._adjacency[u].discard(v)
            self._adjacency[v].discard(u)
        for u, v in delta.added:
            if u == v:
                raise ConfigurationError(f"churn delta adds self-loop on node {u}")
            if not (0 <= u < self._n and 0 <= v < self._n):
                raise ConfigurationError(
                    f"churn delta edge ({u}, {v}) outside node range 0..{self._n - 1}"
                )
            if (u, v) in self._edges:
                raise ConfigurationError(
                    f"churn delta adds existing edge ({u}, {v})"
                )
            self._edges.add((u, v))
            self._adjacency[u].add(v)
            self._adjacency[v].add(u)
        if not delta.is_empty:
            self._sorted_edges = None

    def is_connected(self) -> bool:
        """Whether the current graph is connected (BFS on live adjacency)."""
        if self._n == 1:
            return True
        seen = [False] * self._n
        seen[0] = True
        frontier = [0]
        count = 1
        while frontier:
            next_frontier: List[int] = []
            for node in frontier:
                for neighbour in self._adjacency[node]:
                    if not seen[neighbour]:
                        seen[neighbour] = True
                        count += 1
                        next_frontier.append(neighbour)
            frontier = next_frontier
        return count == self._n

    def would_disconnect(self, edge: Edge) -> bool:
        """Whether removing ``edge`` would disconnect its two endpoints.

        Assumes the current graph is connected between the endpoints; runs a
        BFS from one endpoint that is forbidden from crossing ``edge``.
        """
        u, v = normalize_edge(*edge)
        seen = [False] * self._n
        seen[u] = True
        frontier = [u]
        while frontier:
            next_frontier: List[int] = []
            for node in frontier:
                for neighbour in self._adjacency[node]:
                    if (node == u and neighbour == v) or (node == v and neighbour == u):
                        continue
                    if not seen[neighbour]:
                        if neighbour == v:
                            return False
                        seen[neighbour] = True
                        next_frontier.append(neighbour)
            frontier = next_frontier
        return True

    def snapshot(self, name: str) -> Topology:
        """Materialise the current edge set as an (unvalidated) topology."""
        return Topology(
            self._n, self.edges(), name=name, require_connected=False
        )

    def sample_non_edge(
        self, rng: np.random.Generator, max_rejections: int = 64
    ) -> Optional[Edge]:
        """One uniformly random non-edge, or ``None`` if the graph is complete.

        Uses rejection sampling (the graphs of interest are sparse, so a few
        draws almost always suffice) with a deterministic fallback that
        enumerates the sorted non-edges when rejections keep hitting edges.
        The draw order is fixed, so the result is reproducible for a given
        generator state.
        """
        complete = self._n * (self._n - 1) // 2
        if len(self._edges) >= complete:
            return None
        for _ in range(max_rejections):
            u = int(rng.integers(0, self._n))
            v = int(rng.integers(0, self._n))
            if u == v:
                continue
            edge = normalize_edge(u, v)
            if edge not in self._edges:
                return edge
        non_edges = sorted(
            (u, v)
            for u in range(self._n)
            for v in range(u + 1, self._n)
            if (u, v) not in self._edges
        )
        return non_edges[int(rng.integers(0, len(non_edges)))]


class ChurnAdversary(abc.ABC):
    """Strategy that emits one :class:`EdgeDelta` per round.

    ``propose`` receives the live :class:`AdjacencyCache`, applies its delta
    to it (so multi-edge proposals can probe connectivity against their own
    intermediate state), and returns the delta it applied — the schedule
    layer uses the returned delta as the churn log.
    """

    #: Whether :meth:`propose` reads the protocol state vector.
    state_aware: bool = False

    def begin_run(self) -> None:
        """Reset any per-run internal state (no-op for stateless adversaries)."""

    @abc.abstractmethod
    def propose(
        self,
        round_index: int,
        cache: AdjacencyCache,
        rng: np.random.Generator,
        states: Optional[np.ndarray] = None,
    ) -> EdgeDelta:
        """Apply and return this round's churn against ``cache``.

        ``states`` is the observed per-node state vector for state-aware
        adversaries (``None`` for oblivious ones) and must be treated as
        read-only.
        """


class ObliviousEdgeChurn(ChurnAdversary):
    """Random edge churn: remove and add up to ``k`` edges per round.

    Parameters
    ----------
    remove_per_round, add_per_round:
        Number of deletion / insertion attempts per round.
    preserve_connectivity:
        If ``True`` (default), a deletion whose removal would disconnect its
        endpoints is resampled a few times and then skipped, so the graph
        stays connected; with ``False`` the adversary may cut the graph into
        pieces (the regime the paper's guarantees exclude).

    The RNG draw order is fixed (all removals, then all additions), so for a
    given generator state the delta is fully deterministic.
    """

    def __init__(
        self,
        remove_per_round: int = 1,
        add_per_round: int = 1,
        preserve_connectivity: bool = True,
        max_resamples: int = 8,
    ) -> None:
        if remove_per_round < 0 or add_per_round < 0:
            raise ConfigurationError(
                f"churn counts must be >= 0; got remove={remove_per_round}, "
                f"add={add_per_round}"
            )
        self.remove_per_round = int(remove_per_round)
        self.add_per_round = int(add_per_round)
        self.preserve_connectivity = preserve_connectivity
        self.max_resamples = int(max_resamples)

    def propose(
        self,
        round_index: int,
        cache: AdjacencyCache,
        rng: np.random.Generator,
        states: Optional[np.ndarray] = None,
    ) -> EdgeDelta:
        removed: List[Edge] = []
        for _ in range(self.remove_per_round):
            edge = self._sample_removal(cache, rng)
            if edge is None:
                continue
            cache.apply(EdgeDelta(removed=(edge,)))
            removed.append(edge)
        added: List[Edge] = []
        for _ in range(self.add_per_round):
            edge = cache.sample_non_edge(rng)
            if edge is None:
                continue
            cache.apply(EdgeDelta(added=(edge,)))
            added.append(edge)
        return EdgeDelta(added=tuple(added), removed=tuple(removed))

    def _sample_removal(
        self, cache: AdjacencyCache, rng: np.random.Generator
    ) -> Optional[Edge]:
        for _ in range(self.max_resamples):
            edges = cache.edges()
            if not edges:
                return None
            edge = edges[int(rng.integers(0, len(edges)))]
            if self.preserve_connectivity and cache.would_disconnect(edge):
                continue
            return edge
        return None


class LeaderIsolatingChurn(ChurnAdversary):
    """State-aware adversary that fences off the surviving leaders.

    Each round it first restores the edges it cut previously (so the damage
    does not accumulate), then cuts up to ``cut_per_round`` edges incident to
    nodes currently in a leader state — exactly the edges the leaders' next
    elimination wave would have to cross.  This is the Section 5 thought
    experiment made executable: an adversary with knowledge of the
    configuration can delay convergence far beyond the static-graph bounds.
    """

    state_aware = True

    def __init__(
        self,
        cut_per_round: int = 2,
        leader_state_values: Optional[Iterable[int]] = None,
    ) -> None:
        if cut_per_round < 1:
            raise ConfigurationError(
                f"cut_per_round must be >= 1; got {cut_per_round}"
            )
        self.cut_per_round = int(cut_per_round)
        if leader_state_values is None:
            leader_state_values = (int(state) for state in LEADER_STATES)
        self.leader_state_values = tuple(sorted(set(int(v) for v in leader_state_values)))
        self._cut: List[Edge] = []

    def begin_run(self) -> None:
        self._cut = []

    def propose(
        self,
        round_index: int,
        cache: AdjacencyCache,
        rng: np.random.Generator,
        states: Optional[np.ndarray] = None,
    ) -> EdgeDelta:
        if states is None:
            raise ConfigurationError(
                "LeaderIsolatingChurn is state-aware and needs the state vector"
            )
        added: List[Edge] = []
        for edge in self._cut:
            if not cache.has_edge(*edge):
                cache.apply(EdgeDelta(added=(edge,)))
                added.append(edge)
        self._cut = []

        states = np.asarray(states)
        leader_mask = np.isin(states, self.leader_state_values)
        leader_nodes = np.flatnonzero(leader_mask)
        removed: List[Edge] = []
        if leader_nodes.size:
            candidates = sorted(
                {
                    normalize_edge(int(node), neighbour)
                    for node in leader_nodes
                    for neighbour in cache.neighbors(int(node))
                }
            )
            for _ in range(min(self.cut_per_round, len(candidates))):
                if not candidates:
                    break
                edge = candidates.pop(int(rng.integers(0, len(candidates))))
                cache.apply(EdgeDelta(removed=(edge,)))
                removed.append(edge)
                self._cut.append(edge)
        return EdgeDelta(added=tuple(added), removed=tuple(removed))
