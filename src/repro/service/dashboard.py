"""``repro top``: a polled terminal dashboard over a sweep service.

The daemon already exposes everything a status screen needs — ``/healthz``
(version, uptime, drain state), ``/metrics`` (counters, queue depth, cache
hit/miss, the shard wall-time histogram) and ``/sweeps`` (+ per-sweep
status with live per-shard heartbeat rows).  This module polls those
endpoints every ``interval`` seconds and renders one screenful, in the
spirit of ``top``/Klipper-style printer consoles: totals up top, one row
per sweep, and — when heartbeats are on — an indented live line per
in-flight shard showing its engine round, active replicas, rounds/sec and
how long ago it last beat.

Rendering is a pure function (:func:`render_top`: payloads in, string
out), so tests cover the layout without a daemon; :func:`top` owns the
poll-sleep-clear loop and is what the CLI calls.
"""

from __future__ import annotations

import sys
import time
from typing import IO, Dict, List, Mapping, Optional, Sequence

from repro.errors import ServiceError
from repro.service.client import ServiceClient

__all__ = ["render_top", "top"]

#: ANSI clear-screen + cursor-home, written between refreshes.
_CLEAR = "\x1b[2J\x1b[H"


def _number(value: object, default: float = 0.0) -> float:
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return default


def _shard_line(row: Mapping[str, object]) -> str:
    """One indented live line per in-flight shard."""
    parts = [
        f"  cell {row.get('cell', '?')}",
        f"shard {row.get('shard', '?')}/{row.get('shards', '?')}",
        f"attempt {row.get('attempt', 0)}",
        str(row.get("state", "?")),
    ]
    if "round" in row:
        parts.append(f"round {row['round']}")
        parts.append(f"active {row.get('active', '?')}/{row.get('replicas', '?')}")
        rate = _number(row.get("rounds_per_second"))
        if rate:
            parts.append(f"{rate:,.0f} rounds/s")
    if row.get("kernel"):
        parts.append(f"kernel {row['kernel']}")
    age = row.get("beat_age_seconds")
    if age is not None:
        parts.append(f"beat {_number(age):.1f}s ago")
    retries = row.get("retries")
    if retries:
        parts.append(f"retries {retries}")
    return " ".join(parts)


def render_top(
    health: Mapping[str, object],
    metrics: Mapping[str, object],
    sweeps: Mapping[str, object],
    statuses: Optional[Mapping[str, Mapping[str, object]]] = None,
    url: str = "",
) -> str:
    """Render one dashboard frame from the service's JSON payloads.

    ``statuses`` optionally maps sweep ids to their ``GET /sweeps/{id}``
    payloads — running sweeps then contribute per-shard heartbeat lines.
    """
    service = metrics.get("service") or {}
    counters: Dict[str, object] = dict(service.get("counters") or {})  # type: ignore[union-attr]
    gauges: Dict[str, object] = dict(service.get("gauges") or {})  # type: ignore[union-attr]
    lines: List[str] = []
    uptime = health.get("uptime_seconds")
    header = [
        "repro top",
        url or "?",
        str(health.get("state", "?")),
        f"v{health.get('version', '?')}",
    ]
    if uptime is not None:
        header.append(f"up {_number(uptime):.0f}s")
    lines.append(" — ".join(header))
    lines.append(
        "workers {workers:.0f}  queue {queue:.0f}  running shards {running:.0f}  "
        "heartbeats {beats:.0f}  cache {hits:.0f}/{misses:.0f} hit/miss  "
        "retries {retries:.0f}".format(
            workers=_number(gauges.get("service.workers")),
            queue=_number(gauges.get("service.queue_depth")),
            running=_number(gauges.get("service.shards_running")),
            beats=_number(counters.get("service.heartbeats")),
            hits=_number(counters.get("service.cache_hits")),
            misses=_number(counters.get("service.cache_misses")),
            retries=_number(counters.get("service.shards_retried")),
        )
    )
    histogram = metrics.get("shard_wall_seconds")
    if isinstance(histogram, Mapping) and _number(histogram.get("count")):
        count = _number(histogram.get("count"))
        lines.append(
            f"shards executed {count:.0f}  "
            f"mean wall {_number(histogram.get('sum')) / count:.3f}s"
        )
    rows: Sequence[Mapping[str, object]] = sweeps.get("sweeps") or ()  # type: ignore[assignment]
    lines.append("")
    lines.append(
        f"{'SWEEP':<14} {'STATE':<10} {'CELLS':>7} {'SHARDS':>9} {'RETRIES':>8}"
    )
    for row in rows:
        lines.append(
            "{id:<14} {state:<10} {cells:>7} {shards:>9} {retries:>8}".format(
                id=str(row.get("id", "?")),
                state=str(row.get("state", "?")),
                cells=f"{row.get('completed_cells', '?')}/{row.get('cells', '?')}",
                shards=(
                    f"{row.get('completed_shards', '?')}/{row.get('shards', '?')}"
                ),
                retries=str(row.get("retries", 0)),
            )
        )
        status = (statuses or {}).get(str(row.get("id")))
        if status is not None:
            for shard_row in status.get("progress") or ():  # type: ignore[union-attr]
                lines.append(_shard_line(shard_row))  # type: ignore[arg-type]
    if not rows:
        lines.append("(no sweeps submitted yet)")
    return "\n".join(lines) + "\n"


def top(
    url: str,
    interval: float = 2.0,
    iterations: Optional[int] = None,
    out: Optional[IO[str]] = None,
    clear: bool = True,
) -> int:
    """Poll a sweep service and render the dashboard until interrupted.

    ``iterations`` bounds the number of frames (``None`` = until Ctrl-C;
    the CLI's ``--once`` maps to 1, which also disables screen clearing).
    Returns a process exit code.
    """
    out = out if out is not None else sys.stdout
    client = ServiceClient(url)
    frame = 0
    while True:
        try:
            health = client.healthz()
            metrics = client.metrics()
            sweeps = client.sweeps()
            statuses = {
                str(row.get("id")): client.status(str(row.get("id")))
                for row in sweeps.get("sweeps") or ()  # type: ignore[union-attr]
                if row.get("state") == "running"
            }
        except ServiceError as error:
            print(str(error), file=sys.stderr)
            return 1
        text = render_top(health, metrics, sweeps, statuses, url=client.url)
        if clear and iterations != 1:
            out.write(_CLEAR)
        out.write(text)
        out.flush()
        frame += 1
        if iterations is not None and frame >= iterations:
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0
