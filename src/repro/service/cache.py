"""Content-addressed result cache for the sweep service.

Every execution backend is deterministic under matched seeds, so a cell's
:func:`~repro.exec.cells.cell_signature` — the SHA-256 of its canonical
JSON spec — fully determines its outcome.  The service exploits that:
executed outcomes are stored on disk keyed by signature, and any later
submission of an identical cell (same protocol, graph, seed order, budget,
schedule, observers) is served from the store without touching an engine.

Entries are one JSON file per signature under ``<dir>/<sig[:2]>/<sig>.json``:

.. code-block:: json

    {"signature": "...", "cell": {...cell spec...},
     "records": [...], "payload": "<base64 pickle of the CellOutcome>"}

The human-auditable parts (cell spec, flattened trial records) are plain
JSON; the byte-exact outcome (batch arrays, traces, reducer accumulators)
rides in the pickled ``payload`` — the same transport the ``process:N``
backend uses between worker processes.  Writes go through a temp file and
``os.replace`` so concurrent worker threads (or a reader racing a writer)
never observe a half-written entry.

Determinism doubles as a safety net for retries: :meth:`ResultCache.put`
on a signature that already has an entry *verifies* the fresh outcome's
records against the stored ones instead of overwriting — a mismatch means
a retried shard produced different bytes than its first (cached) run,
which is a bug worth failing loudly over, not a condition to paper over.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Dict, Optional

from repro.exec.cells import CellOutcome, ExecutionCell, cell_to_spec
from repro.service.wire import decode_outcome, encode_outcome

__all__ = ["ResultCache"]


class ResultCache:
    """On-disk outcome store keyed by canonical cell signature.

    Parameters
    ----------
    directory:
        Root of the store.  ``None`` creates a private temporary directory
        that lives (and caches) for the lifetime of this object — pass a
        real path to persist results across daemon restarts.

    ``hits`` / ``misses`` are plain-int counters (guarded by one lock with
    the file operations); the service surfaces them as
    ``service.cache_hits`` / ``service.cache_misses`` in ``GET /metrics``.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        if directory is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-service-cache-")
            directory = self._tmp.name
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()

    def _path(self, signature: str) -> Path:
        return self.directory / signature[:2] / f"{signature}.json"

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*/*.json"))

    def get(self, signature: str) -> Optional[CellOutcome]:
        """The cached outcome for ``signature``, or ``None`` (counted miss).

        A corrupt entry (truncated file, undecodable payload) is treated as
        a miss and deleted, so one bad write can never wedge a signature.
        """
        path = self._path(signature)
        with self._lock:
            try:
                envelope = json.loads(path.read_text(encoding="utf-8"))
                outcome = decode_outcome(envelope["payload"])
            except FileNotFoundError:
                self.misses += 1
                return None
            except Exception:
                path.unlink(missing_ok=True)
                self.misses += 1
                return None
            self.hits += 1
            return outcome

    def put(
        self, signature: str, cell: ExecutionCell, outcome: CellOutcome
    ) -> bool:
        """Store ``outcome`` under ``signature``; verify on overlap.

        Returns ``True`` when the entry was written or the existing entry's
        records match (the determinism assertion retries rely on), and
        ``False`` when an entry exists with *different* records — the
        caller treats that as a hard failure.
        """
        path = self._path(signature)
        fresh_records = [record.as_dict() for record in outcome.to_records()]
        with self._lock:
            if path.exists():
                try:
                    envelope = json.loads(path.read_text(encoding="utf-8"))
                    stored_records = envelope.get("records")
                except Exception:
                    stored_records = None
                if stored_records is None:
                    # Unreadable entry: replace it rather than comparing.
                    path.unlink(missing_ok=True)
                else:
                    return _records_match(stored_records, fresh_records)
            path.parent.mkdir(parents=True, exist_ok=True)
            envelope = {
                "signature": signature,
                "cell": cell_to_spec(cell),
                "records": fresh_records,
                "payload": encode_outcome(outcome),
            }
            handle, temp_name = tempfile.mkstemp(
                dir=str(path.parent), suffix=".tmp"
            )
            try:
                with os.fdopen(handle, "w", encoding="utf-8") as fh:
                    json.dump(envelope, fh, default=str)
                os.replace(temp_name, path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
            return True

    def stats(self) -> Dict[str, int]:
        """Plain-dict hit/miss counters (what ``/metrics`` samples)."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses}

    def close(self) -> None:
        """Release the private temporary directory, if this cache owns one."""
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None


def _records_match(stored: object, fresh: object) -> bool:
    """Compare record dict lists through a JSON round-trip.

    The stored side already went through JSON (tuples → lists, non-JSON
    scalars → strings), so the fresh side is normalised the same way
    before comparing — a false mismatch from representation drift would
    fail sweeps that are in fact byte-identical.
    """
    normalise = lambda value: json.loads(json.dumps(value, default=str))
    return normalise(stored) == normalise(fresh)
