"""Prometheus text exposition for the sweep service's ``/metrics``.

The service's metrics endpoint is JSON by default (the shape
:meth:`~repro.service.server.SweepService.metrics_payload` returns);
a scraper that sends ``Accept: text/plain`` gets the same numbers in
the Prometheus `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_
instead, rendered by :func:`render_prometheus`:

* every ``service.*`` counter becomes a ``repro_...`` counter,
* every ``service.*`` gauge becomes a ``repro_...`` gauge,
* the per-shard wall-time histogram becomes a classic Prometheus
  histogram (cumulative ``_bucket{le=...}`` series plus ``_sum`` and
  ``_count``),
* the daemon's identity is an info-style gauge
  ``repro_service_info{version="..."} 1`` plus
  ``repro_service_uptime_seconds``.

Metric names are derived mechanically (dots and other non-identifier
characters become underscores, prefixed ``repro_``), so a counter added
anywhere in the service shows up in the scrape without touching this
module.  Everything here is pure string formatting over the JSON
payloads — no state, no locks — which keeps it trivially testable.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional

__all__ = ["prometheus_name", "render_prometheus"]

_INVALID = re.compile(r"[^a-zA-Z0-9_]")


def prometheus_name(name: str) -> str:
    """Mechanical metric-name mangling: ``service.cache_hits`` →
    ``repro_service_cache_hits``."""
    return "repro_" + _INVALID.sub("_", str(name))


def _format_value(value: object) -> str:
    try:
        number = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return "0"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _histogram_lines(name: str, histogram: Mapping[str, object]) -> List[str]:
    metric = prometheus_name(name)
    lines = [f"# TYPE {metric} histogram"]
    cumulative = 0
    for bucket in histogram.get("buckets", ()):  # type: ignore[union-attr]
        le = bucket.get("le")  # type: ignore[union-attr]
        count = int(bucket.get("count", 0))  # type: ignore[union-attr]
        cumulative = count  # counts are already cumulative per bucket
        label = "+Inf" if le is None else _format_value(le)
        lines.append(f'{metric}_bucket{{le="{label}"}} {cumulative}')
    lines.append(f"{metric}_sum {_format_value(histogram.get('sum', 0.0))}")
    lines.append(f"{metric}_count {int(histogram.get('count', 0))}")  # type: ignore[arg-type]
    return lines


def render_prometheus(
    metrics: Mapping[str, object],
    health: Optional[Mapping[str, object]] = None,
) -> str:
    """Render the JSON ``/metrics`` payload as Prometheus text exposition.

    ``metrics`` is exactly what :meth:`SweepService.metrics_payload`
    returns; ``health`` (optional) contributes the version/uptime series.
    The output ends with a newline, as the exposition format requires.
    """
    lines: List[str] = []
    service = metrics.get("service") or {}
    counters: Dict[str, object] = dict(service.get("counters") or {})  # type: ignore[union-attr]
    gauges: Dict[str, object] = dict(service.get("gauges") or {})  # type: ignore[union-attr]
    for name in sorted(counters):
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(counters[name])}")
    for name in sorted(gauges):
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauges[name])}")
    histogram = metrics.get("shard_wall_seconds")
    if isinstance(histogram, Mapping):
        lines.extend(_histogram_lines("service.shard_wall_seconds", histogram))
    if health is not None:
        version = health.get("version")
        if version is not None:
            lines.append("# TYPE repro_service_info gauge")
            lines.append(f'repro_service_info{{version="{version}"}} 1')
        uptime = health.get("uptime_seconds")
        if uptime is not None:
            lines.append("# TYPE repro_service_uptime_seconds gauge")
            lines.append(f"repro_service_uptime_seconds {_format_value(uptime)}")
    return "\n".join(lines) + "\n"
