"""Wire format helpers shared by the sweep-service daemon and client.

Two payload classes travel over the service's HTTP API:

* **cell specs** — pure-JSON descriptions of :class:`~repro.exec.ExecutionCell`
  objects, produced by :func:`~repro.exec.cells.cell_to_spec` and rebuilt
  with :func:`~repro.exec.cells.cell_from_spec`.  Submissions are plain
  JSON so any HTTP client (``curl`` included) can drive the daemon;
* **cell outcomes** — the executed results.  Outcomes carry numpy arrays,
  batch traces and streaming-reducer accumulators whose byte-identity is
  the whole point of the backend parity contract, so they are transported
  as base64-encoded pickles inside JSON envelopes
  (:func:`encode_outcome` / :func:`decode_outcome`) — exactly the
  serialisation the ``process:N`` backend already relies on to ship
  outcomes between worker processes.  The daemon and its clients are the
  same codebase in the same trust domain (a pickle is executable content;
  never point :class:`~repro.service.client.ServiceBackend` at a daemon
  you do not control).

The module also owns the tiny HTTP-side JSON conventions (UTF-8 bodies,
``Content-Type: application/json``, ``{"error": ...}`` envelopes) so the
request handler and the client never drift apart.
"""

from __future__ import annotations

import base64
import json
import pickle
from typing import Dict, List, Mapping, Sequence

from repro.errors import ConfigurationError, ServiceError
from repro.exec.cells import CellOutcome, ExecutionCell, cell_from_spec, cell_to_spec

__all__ = [
    "cells_from_payload",
    "cells_to_payload",
    "decode_outcome",
    "dump_json",
    "encode_outcome",
    "load_json",
]

#: ``Content-Type`` every request and response body uses.
JSON_CONTENT_TYPE = "application/json; charset=utf-8"


def dump_json(payload: Mapping[str, object]) -> bytes:
    """Encode one JSON response/request body (UTF-8, ``str`` fallback)."""
    return json.dumps(payload, default=str).encode("utf-8")


def load_json(body: bytes, what: str = "request body") -> Dict[str, object]:
    """Decode a JSON object body, raising :class:`ConfigurationError` on junk."""
    if not body:
        raise ConfigurationError(f"{what} is empty; expected a JSON object")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ConfigurationError(f"{what} is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"{what} must be a JSON object; got {type(payload).__name__}"
        )
    return payload


def cells_to_payload(cells: Sequence[ExecutionCell]) -> List[Dict[str, object]]:
    """Render cells as the JSON spec list a ``POST /sweeps`` body carries."""
    return [cell_to_spec(cell) for cell in cells]


def cells_from_payload(payload: object) -> "tuple[ExecutionCell, ...]":
    """Rebuild the submitted cells, raising on malformed or empty lists."""
    if not isinstance(payload, (list, tuple)) or not payload:
        raise ConfigurationError(
            f"a sweep submission needs a non-empty 'cells' list; got {payload!r}"
        )
    return tuple(cell_from_spec(spec) for spec in payload)


def encode_outcome(outcome: CellOutcome) -> str:
    """Base64 pickle of one executed outcome (the byte-exact transport)."""
    return base64.b64encode(
        pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_outcome(payload: object) -> CellOutcome:
    """Inverse of :func:`encode_outcome`; raises :class:`ServiceError` on junk."""
    if not isinstance(payload, str):
        raise ServiceError(
            f"outcome payload must be a base64 string; got {type(payload).__name__}"
        )
    try:
        outcome = pickle.loads(base64.b64decode(payload.encode("ascii")))
    except Exception as error:  # corrupt payloads must not crash the caller
        raise ServiceError(f"could not decode outcome payload: {error}") from None
    if not isinstance(outcome, CellOutcome):
        raise ServiceError(
            f"outcome payload decoded to {type(outcome).__name__}, "
            f"expected CellOutcome"
        )
    return outcome
