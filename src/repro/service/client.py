"""Client side of the sweep service: HTTP client, backend, and tailer.

Three layers, thinnest first:

* :class:`ServiceClient` — a stdlib-:mod:`urllib` JSON client over the
  daemon's HTTP API; every transport failure or non-2xx response becomes a
  :class:`~repro.errors.ServiceError` carrying the server's message;
* :class:`ServiceBackend` — an :class:`~repro.exec.ExecutionBackend` whose
  executor happens to live in another process: ``run_cell_outcomes``
  submits the cells, long-polls the event stream for progress (delivering
  :class:`~repro.exec.CellCompleted` events in cell order, like every
  backend), and fetches the byte-exact outcomes back.  Registered as
  ``"service:URL"`` in :func:`~repro.exec.resolve_backend`, so any sweep
  entry point (``repro montecarlo --backend service:http://host:port``)
  can run against a daemon without code changes;
* :func:`tail_service` — ``repro tail --url``: renders a remote sweep's
  event stream with the same renderer as file-based telemetry.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import IO, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ServiceError
from repro.exec.base import (
    CellCompleted,
    ExecutionBackend,
    ProgressHook,
    ShardProgress,
)
from repro.exec.cells import CellOutcome, ExecutionCell
from repro.service.wire import (
    JSON_CONTENT_TYPE,
    cells_to_payload,
    decode_outcome,
    dump_json,
)
from repro.telemetry.heartbeat import Heartbeat
from repro.telemetry.progress import render_event

__all__ = ["ServiceBackend", "ServiceClient", "normalise_url", "tail_service"]


def normalise_url(url: str) -> str:
    """Canonicalise a service URL (scheme defaulted, trailing ``/`` dropped).

    Raises :class:`~repro.errors.ConfigurationError` on an empty URL — the
    message ``resolve_backend`` surfaces for a bare ``"service:"`` spec.
    """
    url = (url or "").strip().rstrip("/")
    if not url:
        raise ConfigurationError(
            "a service backend needs a URL, e.g. 'service:http://127.0.0.1:8123'"
        )
    if "://" not in url:
        url = f"http://{url}"
    return url


class ServiceClient:
    """JSON-over-HTTP client for one sweep-service daemon."""

    def __init__(self, url: str, timeout: float = 60.0) -> None:
        self.url = normalise_url(url)
        self.timeout = timeout

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, object]:
        request = urllib.request.Request(
            f"{self.url}{path}",
            method=method,
            data=None if payload is None else dump_json(payload),
            headers={} if payload is None else {"Content-Type": JSON_CONTENT_TYPE},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout
            ) as response:
                body = response.read()
        except urllib.error.HTTPError as error:
            detail = ""
            try:
                detail = json.loads(error.read().decode("utf-8")).get("error", "")
            except Exception:
                pass
            raise ServiceError(
                f"{method} {path} failed with HTTP {error.code}"
                + (f": {detail}" if detail else "")
            ) from None
        except (urllib.error.URLError, OSError) as error:
            raise ServiceError(
                f"sweep service at {self.url} is unreachable: {error}"
            ) from None
        try:
            decoded = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(
                f"{method} {path} returned invalid JSON: {error}"
            ) from None
        if not isinstance(decoded, dict):
            raise ServiceError(
                f"{method} {path} returned {type(decoded).__name__}, "
                f"expected a JSON object"
            )
        return decoded

    # ------------------------------------------------------------------ #
    # API verbs
    # ------------------------------------------------------------------ #

    def healthz(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, object]:
        return self._request("GET", "/metrics")

    def submit(
        self,
        cells: Sequence[ExecutionCell],
        shard_size: object = None,
        heartbeat_interval: object = None,
        kernel: object = None,
    ) -> Dict[str, object]:
        """``POST /sweeps``; returns the receipt (``{"id": ..., ...}``)."""
        payload: Dict[str, object] = {
            "cells": cells_to_payload(cells),
            "shard_size": shard_size,
        }
        if heartbeat_interval is not None:
            payload["heartbeat_interval"] = heartbeat_interval
        if kernel is not None:
            payload["kernel"] = kernel
        return self._request("POST", "/sweeps", payload)

    def status(self, sweep_id: str) -> Dict[str, object]:
        return self._request("GET", f"/sweeps/{sweep_id}")

    def sweeps(self) -> Dict[str, object]:
        """``GET /sweeps``: every sweep's one-line summary."""
        return self._request("GET", "/sweeps")

    def spans(self, sweep_id: str) -> Dict[str, object]:
        """``GET /sweeps/{id}/spans``: the sweep's span tree as records."""
        return self._request("GET", f"/sweeps/{sweep_id}/spans")

    def events(
        self, sweep_id: str, cursor: int = 0, timeout: float = 10.0
    ) -> Dict[str, object]:
        """Long-poll ``/sweeps/{id}/events`` from ``cursor``."""
        return self._request(
            "GET",
            f"/sweeps/{sweep_id}/events?cursor={int(cursor)}"
            f"&timeout={float(timeout)}",
            # The HTTP timeout must outlive the server-side poll window.
            timeout=float(timeout) + self.timeout,
        )

    def outcome(self, sweep_id: str, cell_index: int) -> CellOutcome:
        """Fetch one completed cell's byte-exact outcome."""
        payload = self._request(
            "GET", f"/sweeps/{sweep_id}/outcomes?cell={int(cell_index)}"
        )
        return decode_outcome(payload.get("outcome"))

    def cancel(self, sweep_id: str) -> Dict[str, object]:
        return self._request("POST", f"/sweeps/{sweep_id}/cancel")


class ServiceBackend(ExecutionBackend):
    """Execute sweep cells on a remote sweep-service daemon.

    Same contract as every local backend: outcomes return in cell order,
    progress events arrive in cell order, records are byte-identical to
    the sequential loop under matched seeds (the daemon's workers run the
    same engines; the parity suite holds it to that).

    ``shard_size`` is forwarded with the submission, so the *daemon* shards
    the seed lists across its worker pool — the client stays a thin pipe.
    So is ``heartbeat_interval`` (``--heartbeat``): the daemon's workers
    emit in-flight beats, the event stream carries them as ``"progress"``
    records, and the backend re-materialises them as
    :class:`~repro.exec.ShardProgress` events for the local progress hook
    — the same shape every local backend delivers.  And so is ``kernel``
    (``--kernel``): the spec rides the submission and resolves on the
    daemon's workers, where the engines actually run.
    """

    def __init__(
        self,
        url: str,
        shard_size: object = None,
        poll_timeout: float = 10.0,
        timeout: float = 60.0,
        heartbeat_interval: object = None,
        kernel: object = None,
    ) -> None:
        self.client = ServiceClient(url, timeout=timeout)
        self.url = self.client.url
        self.name = f"service:{self.url}"
        self.shard_size = shard_size
        self.poll_timeout = poll_timeout
        self.heartbeat_interval = heartbeat_interval
        self.kernel = kernel

    def run_cell_outcomes(
        self,
        cells: Sequence[ExecutionCell],
        progress: Optional[ProgressHook] = None,
    ) -> Tuple[CellOutcome, ...]:
        cells = tuple(cells)
        if not cells:
            return ()
        receipt = self.client.submit(
            cells,
            shard_size=self.shard_size,
            heartbeat_interval=self.heartbeat_interval,
            kernel=self.kernel,
        )
        sweep_id = str(receipt["id"])
        outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
        next_emit = 0  # progress events must go out in cell order
        cursor = 0
        while True:
            poll = self.client.events(
                sweep_id, cursor=cursor, timeout=self.poll_timeout
            )
            cursor = int(poll["cursor"])  # type: ignore[arg-type]
            for record in poll.get("events", ()):  # type: ignore[union-attr]
                if record.get("event") == "progress":
                    self._emit_progress(progress, record, cells)
                    continue
                if record.get("event") != "cell":
                    continue
                index = int(record["index"])
                if outcomes[index] is None:
                    outcomes[index] = self.client.outcome(sweep_id, index)
                while (
                    next_emit < len(cells) and outcomes[next_emit] is not None
                ):
                    self._emit(progress, next_emit, len(cells), outcomes)
                    next_emit += 1
            if poll.get("done"):
                state = poll.get("state")
                if state != "done":
                    raise ServiceError(
                        f"sweep {sweep_id} ended in state {state!r}: "
                        f"{poll.get('error') or 'no error reported'}"
                    )
                break
        for index in range(len(cells)):  # cached cells may predate polling
            if outcomes[index] is None:
                outcomes[index] = self.client.outcome(sweep_id, index)
        while next_emit < len(cells):
            self._emit(progress, next_emit, len(cells), outcomes)
            next_emit += 1
        return tuple(outcomes)  # type: ignore[return-value]

    def _emit_progress(
        self,
        progress: Optional[ProgressHook],
        record: Dict[str, object],
        cells: Sequence[ExecutionCell],
    ) -> None:
        """Re-materialise a ``"progress"`` event as a ShardProgress.

        In-flight beats carry no determinism contract, so a malformed
        record is dropped rather than failing the sweep.
        """
        if progress is None:
            return
        try:
            index = int(record["index"])  # type: ignore[arg-type]
            cell = cells[index]
            kernel = record.get("kernel")
            heartbeat = Heartbeat(
                engine=str(record.get("engine", "?")),
                kernel=None if kernel is None else str(kernel),
                round_index=int(record.get("round", 0)),  # type: ignore[arg-type]
                replicas=int(record.get("replicas", 0)),  # type: ignore[arg-type]
                active=int(record.get("active", 0)),  # type: ignore[arg-type]
                converged=int(record.get("converged", 0)),  # type: ignore[arg-type]
                leaderless=int(record.get("leaderless", 0)),  # type: ignore[arg-type]
                rounds_advanced=int(record.get("rounds_advanced", 0)),  # type: ignore[arg-type]
                rounds_per_second=float(record.get("rounds_per_second", 0.0)),  # type: ignore[arg-type]
                elapsed_seconds=0.0,
            )
            shard = record.get("shard")
            shards = record.get("shards")
            event = ShardProgress(
                index=index,
                total=len(cells),
                backend=self.name,
                cell=cell,
                heartbeat=heartbeat,
                shard_index=None if shard is None else int(shard),  # type: ignore[arg-type]
                shard_count=None if shards is None else int(shards),  # type: ignore[arg-type]
                attempt=int(record.get("attempt", 0) or 0),  # type: ignore[arg-type]
            )
        except (KeyError, IndexError, TypeError, ValueError):
            return
        progress(event)

    def _emit(
        self,
        progress: Optional[ProgressHook],
        index: int,
        total: int,
        outcomes: Sequence[Optional[CellOutcome]],
    ) -> None:
        if progress is None:
            return
        outcome = outcomes[index]
        assert outcome is not None
        progress(
            CellCompleted(
                index=index,
                total=total,
                outcome=outcome,
                backend=self.name,
                wall_seconds=outcome.wall_seconds,
                rounds_advanced=outcome.rounds_advanced,
            )
        )


def tail_service(
    url: str,
    sweep_id: str,
    follow: bool = True,
    interval: float = 0.5,
    out: Optional[IO[str]] = None,
    max_wait: Optional[float] = None,
) -> int:
    """Render a remote sweep's event stream (``repro tail --url``).

    Records come straight off ``GET /sweeps/{id}/events`` and are rendered
    by the same :func:`~repro.telemetry.progress.render_event` as file
    telemetry — shard sub-progress lines included.  Returns the number of
    records rendered; stops at the sweep's terminal state (or after one
    poll when ``follow`` is off, or when ``max_wait`` passes).
    """
    out = out if out is not None else sys.stdout
    client = ServiceClient(url)
    deadline = None if max_wait is None else time.monotonic() + max_wait
    rendered = 0
    cursor = 0
    while True:
        timeout = interval if follow else 0.0
        if deadline is not None:
            timeout = min(timeout, max(0.0, deadline - time.monotonic()))
        poll = client.events(sweep_id, cursor=cursor, timeout=timeout)
        cursor = int(poll["cursor"])  # type: ignore[arg-type]
        for record in poll.get("events", ()):  # type: ignore[union-attr]
            print(render_event(record), file=out)
            rendered += 1
        if poll.get("done"):
            state = poll.get("state")
            if state != "done":
                print(
                    f"sweep {sweep_id} {state}: "
                    f"{poll.get('error') or 'no error reported'}",
                    file=out,
                )
            break
        if not follow:
            break
        if deadline is not None and time.monotonic() >= deadline:
            break
    return rendered
