"""The sweep-service daemon: an HTTP front over a shard-job worker pool.

:class:`SweepService` turns the execution layer into "repro as a service":
clients POST sweeps of :class:`~repro.exec.ExecutionCell` specs, the
daemon splits each cell into shard jobs (:func:`~repro.exec.split_cell`),
a pool of worker threads executes them through the in-process batched
executor, and the shard outcomes are merged back byte-identically
(:func:`~repro.exec.merge_cell_outcomes`) — the same parity contract every
local backend honours, now across an HTTP boundary.

HTTP API (all JSON, see :mod:`repro.service.wire`):

===========================================  =====================================
``POST /sweeps``                             submit ``{"cells": [...specs...],
                                             "shard_size": null|int|"auto",
                                             "heartbeat_interval": null|int}``;
                                             returns ``{"id": ...}``
``GET /sweeps``                              list all sweeps (id, state, progress)
``GET /sweeps/{id}``                         status incl. live per-shard progress
                                             rows (+ flattened records once done)
``GET /sweeps/{id}/events?cursor=N``         long-poll progress stream; records use
                                             the telemetry JSONL schema (including
                                             in-flight ``"progress"`` heartbeats),
                                             so ``repro tail --url`` renders them
                                             with the file-mode renderer
``GET /sweeps/{id}/outcomes?cell=K``         one completed cell's byte-exact
                                             :class:`~repro.exec.CellOutcome`
``GET /sweeps/{id}/spans``                   the sweep's span tree (sweep → cell →
                                             shard → attempt), for
                                             ``repro trace export``
``POST /sweeps/{id}/cancel``                 stop scheduling the sweep's shards
``GET /healthz``                             liveness + drain state + version +
                                             uptime
``GET /metrics``                             service counters, cache hit/miss,
                                             merged engine metrics, shard wall-time
                                             histogram; with ``Accept: text/plain``
                                             the same numbers in Prometheus text
                                             exposition format
===========================================  =====================================

Three properties carry the design:

* **determinism first** — every executed shard outcome is stored in a
  content-addressed :class:`~repro.service.cache.ResultCache` keyed by
  :func:`~repro.exec.cell_signature`; identical resubmissions are cache
  hits, and a retried shard whose records differ from the cached first
  attempt fails the sweep loudly instead of silently shipping either copy;
* **fault tolerance by re-queue** — a crashed worker attempt (or one that
  exceeds ``shard_timeout``, caught by the watchdog thread) re-queues the
  shard with a fresh attempt token, up to ``max_retries`` times; stale
  completions from superseded attempts are discarded by token mismatch.
  With heartbeats enabled the watchdog is **liveness-based**: every beat
  from a shard pushes its deadline forward, so a slow-but-alive shard is
  never killed at ``shard_timeout`` — only shards that go *silent* for a
  full timeout window re-queue;
* **graceful drain** — :meth:`SweepService.stop` refuses new submissions,
  lets in-flight sweeps finish, then joins the workers and closes the
  listener, so a ``SIGTERM`` to ``repro serve`` never loses a sweep.
"""

from __future__ import annotations

import queue
import threading
import time
import traceback
import uuid
from dataclasses import dataclass, field, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlsplit

from repro._version import __version__
from repro.batch.kernels import validate_kernel
from repro.errors import ConfigurationError, ReproError, ServiceError
from repro.exec.cells import (
    CellOutcome,
    ExecutionCell,
    cell_signature,
    execute_cell_batched,
    merge_cell_outcomes,
    resolve_shard_size,
    split_cell,
)
from repro.service.cache import ResultCache
from repro.service.faults import ServiceFaultInjector
from repro.service.prometheus import render_prometheus
from repro.service.wire import (
    JSON_CONTENT_TYPE,
    cells_from_payload,
    dump_json,
    encode_outcome,
    load_json,
)
from repro.telemetry.heartbeat import Heartbeat, HeartbeatEmitter, use_heartbeat
from repro.telemetry.metrics import MetricsRegistry, merge_snapshots
from repro.telemetry.spans import SpanRecorder

__all__ = ["SweepService"]

#: Sweep states that no longer schedule work.
_TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: Hard cap on one long-poll wait, whatever the client asks for.
_MAX_POLL_SECONDS = 30.0

#: Upper edges of the per-shard wall-time histogram (``/metrics``); the
#: implicit last bucket is +Inf.
_SHARD_WALL_BUCKETS = (0.01, 0.05, 0.25, 1.0, 5.0, 30.0, 120.0)


def _validate_interval(interval: object) -> Optional[int]:
    """Coerce a heartbeat interval (None passes through, else int >= 1)."""
    if interval is None:
        return None
    try:
        value = int(interval)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"heartbeat_interval must be a positive integer or null; "
            f"got {interval!r}"
        ) from None
    if value < 1:
        raise ConfigurationError(
            f"heartbeat_interval must be >= 1; got {value}"
        )
    return value


@dataclass
class _Shard:
    """One schedulable unit: a sub-cell of one submitted cell."""

    cell_index: int
    shard_index: int
    shard_count: int
    cell: ExecutionCell
    signature: str
    state: str = "pending"  # pending | running | done
    attempt: int = 0  # token; completions from older attempts are stale
    retries: int = 0  # re-queues consumed (crash or timeout)
    deadline: Optional[float] = None
    outcome: Optional[CellOutcome] = None
    last_heartbeat: Optional[Heartbeat] = None
    last_beat_monotonic: Optional[float] = None  # liveness clock
    last_progress_emit: float = 0.0  # event-stream throttle clock
    span_id: Optional[str] = None  # shard span (opened on first attempt)
    attempt_span_id: Optional[str] = None  # current attempt's span


@dataclass
class _Sweep:
    """Book-keeping for one submitted sweep."""

    id: str
    cells: Tuple[ExecutionCell, ...]
    shards: List[List[_Shard]]
    outcomes: List[Optional[CellOutcome]]
    cell_cached: List[bool]
    state: str = "running"  # running | done | failed | cancelled
    error: Optional[str] = None
    events: List[Dict[str, object]] = field(default_factory=list)
    created: float = field(default_factory=time.time)
    heartbeat_interval: Optional[int] = None
    spans: SpanRecorder = field(default_factory=SpanRecorder)
    span_id: Optional[str] = None  # the root sweep span
    cell_span_ids: List[Optional[str]] = field(default_factory=list)

    @property
    def completed_cells(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome is not None)


class SweepService:
    """The daemon behind ``repro serve`` (and the in-process test fixture).

    Parameters
    ----------
    host, port:
        Listen address; ``port=0`` binds an ephemeral port (read it back
        from :attr:`url` / :attr:`port` after :meth:`start`).
    workers:
        Worker threads executing shard jobs.
    max_retries:
        Re-queues allowed per shard before the whole sweep fails.
    shard_timeout:
        Seconds a running shard attempt may take before the watchdog
        re-queues it (``None`` disables the watchdog's timeout path).
    cache_dir:
        Directory for the result cache; ``None`` uses a private temporary
        store that lives with the daemon.
    default_shard_size:
        Shard size applied when a submission does not specify one
        (``None`` | positive int | ``"auto"`` = ``ceil(R / workers)``).
    fault_injector:
        Optional :class:`~repro.service.faults.ServiceFaultInjector`
        consulted at the start of every shard attempt (testing only).
    heartbeat_interval:
        Default in-flight heartbeat interval (engine rounds between
        beats) for submitted sweeps; ``None`` disables heartbeats unless
        a submission asks for them.  With heartbeats on, each beat
        extends the beating shard's watchdog deadline (liveness), feeds
        the per-shard progress rows of ``GET /sweeps/{id}``, and emits
        throttled ``"progress"`` records on the event stream.
    progress_throttle:
        Minimum seconds between ``"progress"`` event-stream records per
        shard (heartbeats themselves are never throttled — only the
        event stream is, so a K=1 beat storm cannot flood long-pollers).
    kernel:
        Default round kernel (:mod:`repro.batch.kernels` spec) stamped
        onto submitted cells that do not choose their own; resolved on
        the executing workers, so an explicit ``"numba"`` only needs
        numba importable where shards actually run.  Records are
        kernel-invariant, so the cache keys ignore it.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        max_retries: int = 2,
        shard_timeout: Optional[float] = None,
        cache_dir: Optional[str] = None,
        default_shard_size: object = None,
        fault_injector: Optional[ServiceFaultInjector] = None,
        heartbeat_interval: Optional[int] = None,
        progress_throttle: float = 0.25,
        kernel: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"worker count must be >= 1; got {workers}")
        if max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0; got {max_retries}"
            )
        self.host = host
        self.workers = int(workers)
        self.max_retries = int(max_retries)
        self.shard_timeout = shard_timeout
        self.default_shard_size = default_shard_size
        self.fault_injector = fault_injector
        self.heartbeat_interval = _validate_interval(heartbeat_interval)
        self.progress_throttle = float(progress_throttle)
        self.kernel = validate_kernel(kernel)
        self.cache = ResultCache(cache_dir)

        self._requested_port = int(port)
        self._lock = threading.RLock()
        self._condition = threading.Condition(self._lock)
        self._sweeps: Dict[str, _Sweep] = {}
        self._queue: "queue.Queue[Tuple[str, int, int, int]]" = queue.Queue()
        self._metrics = MetricsRegistry()  # guarded by self._lock
        self._engine_metrics: Optional[Dict[str, Dict[str, float]]] = None
        self._stop_event = threading.Event()
        self._draining = False
        self._started = False
        self._started_monotonic: Optional[float] = None
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._threads: List[threading.Thread] = []
        # Per-shard wall-time histogram (executed shards only; guarded by
        # self._lock).  Counts are kept cumulative per bucket, matching
        # the Prometheus exposition directly.
        self._shard_wall_sum = 0.0
        self._shard_wall_count = 0
        self._shard_wall_counts = [0] * (len(_SHARD_WALL_BUCKETS) + 1)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def port(self) -> int:
        """The bound port (ephemeral ports resolve after :meth:`start`)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        """Base URL clients point ``service:URL`` specs at."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "SweepService":
        """Bind the listener and boot the worker pool (idempotent)."""
        with self._lock:
            if self._started:
                return self
            self._started = True
            self._started_monotonic = time.monotonic()
        self._httpd = _ServiceHTTPServer(
            (self.host, self._requested_port), _ServiceRequestHandler
        )
        self._httpd.service = self
        for target, name in [
            (self._httpd.serve_forever, "repro-service-http"),
            (self._watchdog_loop, "repro-service-watchdog"),
        ]:
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Shut the daemon down; with ``drain`` let running sweeps finish.

        New submissions are refused (HTTP 503) the moment this is called.
        Without ``drain`` (or once ``timeout`` passes) still-running sweeps
        are cancelled before the workers are joined.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            self._draining = True
            if drain:
                while any(
                    sweep.state not in _TERMINAL_STATES
                    for sweep in self._sweeps.values()
                ):
                    remaining = 0.5
                    if deadline is not None:
                        remaining = min(remaining, deadline - time.monotonic())
                        if remaining <= 0:
                            break
                    self._condition.wait(remaining)
            for sweep in self._sweeps.values():
                if sweep.state not in _TERMINAL_STATES:
                    sweep.state = "cancelled"
                    sweep.error = "service shut down before the sweep finished"
            self._stop_event.set()
            self._condition.notify_all()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads = []
        self.cache.close()

    def __enter__(self) -> "SweepService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop(drain=False)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    def submit(
        self,
        cells: Sequence[ExecutionCell],
        shard_size: object = None,
        heartbeat_interval: object = None,
        kernel: object = None,
    ) -> str:
        """Enqueue a sweep; returns its id.

        Per-cell, the result cache is consulted first (an identical earlier
        submission completes the cell instantly); misses are split into
        shard jobs and handed to the worker pool.  ``heartbeat_interval``
        overrides the service default for this sweep (``None`` inherits);
        ``kernel`` likewise, stamped onto cells without their own (a
        cell's explicit kernel always wins, and cache signatures ignore
        the kernel either way).
        """
        cells = tuple(cells)
        if not cells:
            raise ConfigurationError("a sweep needs at least one cell")
        if shard_size is None:
            shard_size = self.default_shard_size
        interval = _validate_interval(heartbeat_interval)
        if interval is None:
            interval = self.heartbeat_interval
        sweep_kernel = validate_kernel(
            None if kernel is None else str(kernel)
        )
        if sweep_kernel is None:
            sweep_kernel = self.kernel
        if sweep_kernel is not None:
            cells = tuple(
                cell if cell.kernel is not None
                else replace(cell, kernel=sweep_kernel)
                for cell in cells
            )
        with self._condition:
            if self._draining:
                raise ServiceError("service is draining; not accepting sweeps")
            sweep = _Sweep(
                id=uuid.uuid4().hex[:12],
                cells=cells,
                shards=[[] for _ in cells],
                outcomes=[None for _ in cells],
                cell_cached=[False for _ in cells],
                heartbeat_interval=interval,
            )
            sweep.span_id = sweep.spans.begin(
                "sweep", f"sweep {sweep.id}", attrs={"cells": len(cells)}
            )
            sweep.cell_span_ids = [
                sweep.spans.begin(
                    "cell",
                    f"cell {cell_index}: {cell.protocol.label} on "
                    f"{cell.graph.label}",
                    parent_id=sweep.span_id,
                    attrs={
                        "cell": cell_index,
                        "protocol": cell.protocol.label,
                        "graph": cell.graph.label,
                        "replicas": cell.num_replicas,
                    },
                )
                for cell_index, cell in enumerate(cells)
            ]
            self._sweeps[sweep.id] = sweep
            self._metrics.count("service.sweeps_submitted")
            self._metrics.count("service.cells_submitted", len(cells))
            for cell_index, cell in enumerate(cells):
                signature = cell_signature(cell)
                cached = self.cache.get(signature)
                if cached is not None:
                    sweep.outcomes[cell_index] = cached
                    sweep.cell_cached[cell_index] = True
                    sweep.spans.finish(
                        sweep.cell_span_ids[cell_index], attrs={"cached": True}
                    )
                    self._emit_cell_event(sweep, cell_index, cached, cached=True)
                    continue
                resolved = resolve_shard_size(
                    shard_size, cell.num_replicas, self.workers
                )
                sub_cells = split_cell(cell, resolved)
                sweep.shards[cell_index] = [
                    _Shard(
                        cell_index=cell_index,
                        shard_index=shard_index,
                        shard_count=len(sub_cells),
                        cell=sub_cell,
                        signature=cell_signature(sub_cell),
                    )
                    for shard_index, sub_cell in enumerate(sub_cells)
                ]
                for shard in sweep.shards[cell_index]:
                    self._queue.put(
                        (sweep.id, shard.cell_index, shard.shard_index, 0)
                    )
            self._finish_if_complete(sweep)
            self._condition.notify_all()
            return sweep.id

    # ------------------------------------------------------------------ #
    # Worker pool
    # ------------------------------------------------------------------ #

    def _worker_loop(self) -> None:
        while not self._stop_event.is_set():
            try:
                job = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            try:
                self._run_one(*job)
            except BaseException:  # never let a worker thread die silently
                traceback.print_exc()

    def _run_one(
        self, sweep_id: str, cell_index: int, shard_index: int, attempt: int
    ) -> None:
        with self._lock:
            sweep = self._sweeps.get(sweep_id)
            if sweep is None or sweep.state in _TERMINAL_STATES:
                return
            shard = sweep.shards[cell_index][shard_index]
            if shard.state != "pending" or shard.attempt != attempt:
                return  # superseded by a re-queue, or already finished
            shard.state = "running"
            if self.shard_timeout is not None:
                shard.deadline = time.monotonic() + self.shard_timeout
            cell = shard.cell
            signature = shard.signature
            interval = sweep.heartbeat_interval
            if shard.span_id is None:
                shard.span_id = sweep.spans.begin(
                    "shard",
                    f"cell {cell_index} shard {shard_index}",
                    parent_id=sweep.cell_span_ids[cell_index],
                    attrs={
                        "cell": cell_index,
                        "shard": shard_index,
                        "shards": shard.shard_count,
                        "replicas": cell.num_replicas,
                    },
                )
            attempt_attrs: Dict[str, object] = {
                "cell": cell_index,
                "shard": shard_index,
                "attempt": attempt,
            }
            if shard.attempt_span_id is not None:
                # Link the retry chain: this attempt supersedes the last.
                attempt_attrs["retry_of"] = shard.attempt_span_id
            shard.attempt_span_id = sweep.spans.begin(
                "attempt",
                f"cell {cell_index} shard {shard_index} attempt {attempt}",
                parent_id=shard.span_id,
                attrs=attempt_attrs,
            )
        emitter = None
        if interval is not None:
            emitter = HeartbeatEmitter(
                interval,
                lambda beat: self._note_heartbeat(
                    sweep_id, cell_index, shard_index, attempt, beat
                ),
            )
        from_cache = False
        try:
            with use_heartbeat(emitter):
                if self.fault_injector is not None:
                    self.fault_injector.on_attempt(
                        sweep_id, cell_index, shard_index, attempt
                    )
                outcome = self.cache.get(signature)
                if outcome is not None:
                    from_cache = True
                else:
                    outcome = execute_cell_batched(cell)
        except Exception as error:
            self._shard_failed(sweep_id, cell_index, shard_index, attempt, error)
            return
        self._shard_done(
            sweep_id, cell_index, shard_index, attempt, outcome, from_cache
        )

    def _note_heartbeat(
        self,
        sweep_id: str,
        cell_index: int,
        shard_index: int,
        attempt: int,
        beat: Heartbeat,
    ) -> None:
        """Absorb one in-flight beat from a worker's engine (sink callback).

        Beats are liveness *and* progress: the shard's watchdog deadline
        is pushed a full ``shard_timeout`` into the future (a beating
        shard is alive however slow it is), the latest beat is stored for
        the status payload, and — throttled per shard — a ``"progress"``
        record lands on the event stream.
        """
        with self._condition:
            sweep = self._sweeps.get(sweep_id)
            if sweep is None or sweep.state in _TERMINAL_STATES:
                return
            shard = sweep.shards[cell_index][shard_index]
            if shard.attempt != attempt or shard.state != "running":
                return  # beat from a superseded or finished attempt
            now = time.monotonic()
            shard.last_heartbeat = beat
            shard.last_beat_monotonic = now
            if self.shard_timeout is not None:
                shard.deadline = now + self.shard_timeout
            self._metrics.count("service.heartbeats")
            if now - shard.last_progress_emit < self.progress_throttle:
                return
            shard.last_progress_emit = now
            sweep.events.append(
                {
                    "event": "progress",
                    "index": cell_index,
                    "total": len(sweep.cells),
                    "shard": shard_index if shard.shard_count > 1 else None,
                    "shards": shard.shard_count if shard.shard_count > 1 else None,
                    "attempt": attempt,
                    "backend": "service",
                    "protocol": shard.cell.protocol.label,
                    "graph": shard.cell.graph.label,
                    "replicas": shard.cell.num_replicas,
                    "engine": beat.engine,
                    "kernel": beat.kernel,
                    "round": beat.round_index,
                    "active": beat.active,
                    "converged": beat.converged,
                    "leaderless": beat.leaderless,
                    "rounds_advanced": beat.rounds_advanced,
                    "rounds_per_second": beat.rounds_per_second,
                }
            )
            self._condition.notify_all()

    def _shard_failed(
        self,
        sweep_id: str,
        cell_index: int,
        shard_index: int,
        attempt: int,
        error: Exception,
    ) -> None:
        with self._condition:
            sweep = self._sweeps.get(sweep_id)
            if sweep is None or sweep.state in _TERMINAL_STATES:
                return
            shard = sweep.shards[cell_index][shard_index]
            if shard.attempt != attempt or shard.state == "done":
                return  # a newer attempt owns this shard now
            self._requeue_or_fail(sweep, shard, f"{type(error).__name__}: {error}")
            self._condition.notify_all()

    def _requeue_or_fail(
        self, sweep: _Sweep, shard: _Shard, reason: str
    ) -> None:
        """Re-queue a lost shard attempt, or fail the sweep (lock held)."""
        if shard.attempt_span_id is not None:
            sweep.spans.finish(
                shard.attempt_span_id, attrs={"outcome": "lost", "reason": reason}
            )
        shard.last_beat_monotonic = None
        if shard.retries < self.max_retries:
            shard.retries += 1
            shard.attempt += 1
            shard.state = "pending"
            shard.deadline = None
            self._metrics.count("service.shards_retried")
            self._queue.put(
                (sweep.id, shard.cell_index, shard.shard_index, shard.attempt)
            )
            return
        sweep.state = "failed"
        sweep.error = (
            f"shard {shard.shard_index} of cell {shard.cell_index} failed "
            f"after {shard.retries + 1} attempts: {reason}"
        )
        if sweep.span_id is not None:
            sweep.spans.finish(sweep.span_id, attrs={"error": sweep.error})

    def _shard_done(
        self,
        sweep_id: str,
        cell_index: int,
        shard_index: int,
        attempt: int,
        outcome: CellOutcome,
        from_cache: bool,
    ) -> None:
        with self._condition:
            sweep = self._sweeps.get(sweep_id)
            if sweep is None or sweep.state in _TERMINAL_STATES:
                return
            shard = sweep.shards[cell_index][shard_index]
            if shard.attempt != attempt or shard.state == "done":
                return  # stale completion from a superseded attempt
            if not from_cache:
                self._metrics.count("service.shards_executed")
                self._engine_metrics = merge_snapshots(
                    [self._engine_metrics, outcome.metrics]
                )
                if not self.cache.put(shard.signature, shard.cell, outcome):
                    # A retry produced different records than the cached
                    # first attempt — a determinism violation, never OK.
                    sweep.state = "failed"
                    sweep.error = (
                        f"determinism violation: shard {shard_index} of cell "
                        f"{cell_index} (signature {shard.signature[:12]}) "
                        f"produced records that differ from its cached result"
                    )
                    self._condition.notify_all()
                    return
            shard.state = "done"
            shard.outcome = outcome
            shard.deadline = None
            if shard.attempt_span_id is not None:
                sweep.spans.finish(
                    shard.attempt_span_id,
                    attrs={
                        "outcome": "done",
                        "cached": from_cache,
                        "wall_seconds": outcome.wall_seconds,
                    },
                )
            if shard.span_id is not None:
                sweep.spans.finish(
                    shard.span_id,
                    attrs={"retries": shard.retries, "cached": from_cache},
                )
            if not from_cache and outcome.wall_seconds is not None:
                self._observe_shard_wall(float(outcome.wall_seconds))
            if shard.shard_count > 1:
                sweep.events.append(
                    {
                        "event": "shard",
                        "index": cell_index,
                        "total": len(sweep.cells),
                        "shard": shard_index,
                        "shards": shard.shard_count,
                        "backend": "service",
                        "protocol": shard.cell.protocol.label,
                        "graph": shard.cell.graph.label,
                        "replicas": shard.cell.num_replicas,
                        "wall_seconds": outcome.wall_seconds,
                        "rounds_advanced": outcome.rounds_advanced,
                    }
                )
            shards = sweep.shards[cell_index]
            if all(entry.state == "done" for entry in shards):
                cell = sweep.cells[cell_index]
                merged = merge_cell_outcomes(
                    cell, [entry.outcome for entry in shards]
                )
                if len(shards) > 1:
                    # Cache the whole-cell result too, so resubmitting the
                    # cell hits at submit time without re-merging shards.
                    self.cache.put(cell_signature(cell), cell, merged)
                sweep.outcomes[cell_index] = merged
                sweep.spans.finish(
                    sweep.cell_span_ids[cell_index],
                    attrs={
                        "wall_seconds": merged.wall_seconds,
                        "rounds_advanced": merged.rounds_advanced,
                        "retries": sum(entry.retries for entry in shards),
                    },
                )
                self._emit_cell_event(sweep, cell_index, merged, cached=False)
            self._finish_if_complete(sweep)
            self._condition.notify_all()

    def _observe_shard_wall(self, seconds: float) -> None:
        """Fold one executed shard's wall time into the histogram (lock held).

        Bucket counts are cumulative (Prometheus ``le`` semantics): a
        2 ms shard increments every bucket whose upper edge covers it.
        """
        self._shard_wall_sum += seconds
        self._shard_wall_count += 1
        for position, edge in enumerate(_SHARD_WALL_BUCKETS):
            if seconds <= edge:
                self._shard_wall_counts[position] += 1
        self._shard_wall_counts[-1] += 1  # the +Inf bucket sees everything

    def _emit_cell_event(
        self,
        sweep: _Sweep,
        cell_index: int,
        outcome: CellOutcome,
        cached: bool,
    ) -> None:
        """Append one telemetry-schema ``cell`` record (lock held)."""
        records = outcome.to_records()
        mean_rounds = None
        if records:
            rounds = [
                record.convergence_round
                if record.convergence_round is not None
                else record.rounds_executed
                for record in records
            ]
            mean_rounds = float(sum(rounds)) / len(rounds)
        sweep.events.append(
            {
                "event": "cell",
                "index": cell_index,
                "total": len(sweep.cells),
                "backend": "service",
                "protocol": outcome.cell.protocol.label,
                "graph": outcome.cell.graph.label,
                "n": outcome.n,
                "diameter": outcome.diameter,
                "replicas": outcome.cell.num_replicas,
                "mean_rounds": mean_rounds,
                "wall_seconds": outcome.wall_seconds,
                "rounds_advanced": outcome.rounds_advanced,
                "metrics": outcome.metrics,
                "cached": cached,
                "retries": sum(
                    shard.retries for shard in sweep.shards[cell_index]
                ),
            }
        )

    def _finish_if_complete(self, sweep: _Sweep) -> None:
        """Mark the sweep done and emit its summary record (lock held)."""
        if sweep.state != "running" or sweep.completed_cells < len(sweep.cells):
            return
        sweep.state = "done"
        if sweep.span_id is not None:
            sweep.spans.finish(
                sweep.span_id, attrs={"cells": len(sweep.cells)}
            )
        wall = [
            outcome.wall_seconds
            for outcome in sweep.outcomes
            if outcome is not None and outcome.wall_seconds is not None
        ]
        sweep.events.append(
            {
                "event": "summary",
                "cells": len(sweep.cells),
                "wall_seconds": float(sum(wall)),
                "rounds_advanced": sum(
                    outcome.rounds_advanced
                    for outcome in sweep.outcomes
                    if outcome is not None
                ),
            }
        )

    # ------------------------------------------------------------------ #
    # Watchdog: timed-out shard attempts
    # ------------------------------------------------------------------ #

    def _watchdog_loop(self) -> None:
        while not self._stop_event.wait(0.2):
            if self.shard_timeout is None:
                continue
            now = time.monotonic()
            with self._condition:
                for sweep in self._sweeps.values():
                    if sweep.state in _TERMINAL_STATES:
                        continue
                    for shards in sweep.shards:
                        for shard in shards:
                            if (
                                shard.state == "running"
                                and shard.deadline is not None
                                and now > shard.deadline
                            ):
                                self._requeue_or_fail(
                                    sweep,
                                    shard,
                                    f"attempt exceeded shard_timeout="
                                    f"{self.shard_timeout}s",
                                )
                self._condition.notify_all()

    # ------------------------------------------------------------------ #
    # Queries (what the HTTP handler serves)
    # ------------------------------------------------------------------ #

    def _sweep_or_raise(self, sweep_id: str) -> _Sweep:
        sweep = self._sweeps.get(sweep_id)
        if sweep is None:
            raise KeyError(sweep_id)
        return sweep

    def sweep_status(self, sweep_id: str) -> Dict[str, object]:
        """The ``GET /sweeps/{id}`` payload (records included when done)."""
        with self._lock:
            sweep = self._sweep_or_raise(sweep_id)
            shard_total = sum(len(shards) for shards in sweep.shards)
            payload: Dict[str, object] = {
                "id": sweep.id,
                "state": sweep.state,
                "cells": len(sweep.cells),
                "completed_cells": sweep.completed_cells,
                "shards": shard_total,
                "completed_shards": sum(
                    1
                    for shards in sweep.shards
                    for shard in shards
                    if shard.state == "done"
                ),
                "retries": sum(
                    shard.retries
                    for shards in sweep.shards
                    for shard in shards
                ),
                "cached_cells": sum(sweep.cell_cached),
                "error": sweep.error,
                "created": sweep.created,
                "progress": self._shard_progress_rows(sweep),
            }
            if sweep.state == "done":
                payload["records"] = [
                    record.as_dict()
                    for outcome in sweep.outcomes
                    for record in outcome.to_records()  # type: ignore[union-attr]
                ]
            return payload

    def _shard_progress_rows(self, sweep: _Sweep) -> List[Dict[str, object]]:
        """Live per-shard progress rows for the status payload (lock held).

        One row per not-yet-done shard; rows carry the latest heartbeat
        when the sweep runs with heartbeats, and are empty once a sweep
        reaches a terminal state (there is nothing in flight to show).
        """
        if sweep.state in _TERMINAL_STATES:
            return []
        now = time.monotonic()
        rows: List[Dict[str, object]] = []
        for shards in sweep.shards:
            for shard in shards:
                if shard.state == "done":
                    continue
                row: Dict[str, object] = {
                    "cell": shard.cell_index,
                    "shard": shard.shard_index,
                    "shards": shard.shard_count,
                    "state": shard.state,
                    "attempt": shard.attempt,
                    "retries": shard.retries,
                    "replicas": shard.cell.num_replicas,
                    "protocol": shard.cell.protocol.label,
                    "graph": shard.cell.graph.label,
                }
                beat = shard.last_heartbeat
                if beat is not None:
                    row.update(
                        {
                            "engine": beat.engine,
                            "kernel": beat.kernel,
                            "round": beat.round_index,
                            "active": beat.active,
                            "converged": beat.converged,
                            "leaderless": beat.leaderless,
                            "rounds_advanced": beat.rounds_advanced,
                            "rounds_per_second": beat.rounds_per_second,
                        }
                    )
                if shard.last_beat_monotonic is not None:
                    row["beat_age_seconds"] = now - shard.last_beat_monotonic
                rows.append(row)
        return rows

    def list_sweeps(self) -> Dict[str, object]:
        """The ``GET /sweeps`` payload: every sweep's one-line summary."""
        with self._lock:
            rows = []
            for sweep in sorted(
                self._sweeps.values(), key=lambda entry: entry.created
            ):
                shard_total = sum(len(shards) for shards in sweep.shards)
                rows.append(
                    {
                        "id": sweep.id,
                        "state": sweep.state,
                        "cells": len(sweep.cells),
                        "completed_cells": sweep.completed_cells,
                        "shards": shard_total,
                        "completed_shards": sum(
                            1
                            for shards in sweep.shards
                            for shard in shards
                            if shard.state == "done"
                        ),
                        "retries": sum(
                            shard.retries
                            for shards in sweep.shards
                            for shard in shards
                        ),
                        "created": sweep.created,
                        "error": sweep.error,
                    }
                )
            return {"sweeps": rows}

    def spans_payload(self, sweep_id: str) -> Dict[str, object]:
        """The ``GET /sweeps/{id}/spans`` payload: the sweep's span tree."""
        with self._lock:
            sweep = self._sweep_or_raise(sweep_id)
            spans = sweep.spans.spans()
        return {
            "id": sweep_id,
            "spans": [span.to_record() for span in spans],
        }

    def wait_events(
        self, sweep_id: str, cursor: int = 0, timeout: float = 10.0
    ) -> Dict[str, object]:
        """Long-poll the sweep's event stream from ``cursor``.

        Blocks until at least one new record exists, the sweep reaches a
        terminal state, or the (capped) timeout passes; returns the new
        records plus the cursor to resume from.
        """
        cursor = max(0, int(cursor))
        deadline = time.monotonic() + max(
            0.0, min(float(timeout), _MAX_POLL_SECONDS)
        )
        with self._condition:
            sweep = self._sweep_or_raise(sweep_id)
            while (
                len(sweep.events) <= cursor
                and sweep.state not in _TERMINAL_STATES
                and not self._stop_event.is_set()
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._condition.wait(min(remaining, 0.5))
            events = list(sweep.events[cursor:])
            return {
                "cursor": cursor + len(events),
                "events": events,
                "state": sweep.state,
                "done": sweep.state in _TERMINAL_STATES,
                "error": sweep.error,
            }

    def cell_outcome_payload(
        self, sweep_id: str, cell_index: int
    ) -> Dict[str, object]:
        """The ``GET /sweeps/{id}/outcomes?cell=K`` payload."""
        with self._lock:
            sweep = self._sweep_or_raise(sweep_id)
            if not 0 <= cell_index < len(sweep.cells):
                raise ConfigurationError(
                    f"cell index {cell_index} out of range for sweep "
                    f"{sweep_id} with {len(sweep.cells)} cells"
                )
            outcome = sweep.outcomes[cell_index]
            if outcome is None:
                raise ServiceError(
                    f"cell {cell_index} of sweep {sweep_id} has not "
                    f"completed yet (sweep state: {sweep.state})"
                )
            return {
                "id": sweep.id,
                "cell": cell_index,
                "cached": sweep.cell_cached[cell_index],
                "outcome": encode_outcome(outcome),
            }

    def cancel(self, sweep_id: str) -> Dict[str, object]:
        """Stop scheduling a sweep's remaining shards (idempotent)."""
        with self._condition:
            sweep = self._sweep_or_raise(sweep_id)
            if sweep.state == "running":
                sweep.state = "cancelled"
                sweep.error = "cancelled by client"
                self._condition.notify_all()
        return self.sweep_status(sweep_id)

    def metrics_payload(self) -> Dict[str, object]:
        """The ``GET /metrics`` payload: service counters + cache + engine."""
        stats = self.cache.stats()
        with self._lock:
            snapshot = self._metrics.snapshot()
            snapshot["counters"]["service.cache_hits"] = stats["hits"]
            snapshot["counters"]["service.cache_misses"] = stats["misses"]
            snapshot["gauges"]["service.workers"] = self.workers
            snapshot["gauges"]["service.sweeps"] = len(self._sweeps)
            snapshot["gauges"]["service.queue_depth"] = self._queue.qsize()
            snapshot["gauges"]["service.shards_running"] = sum(
                1
                for sweep in self._sweeps.values()
                for shards in sweep.shards
                for shard in shards
                if shard.state == "running"
            )
            if self.heartbeat_interval is not None:
                snapshot["gauges"]["service.heartbeat_interval"] = (
                    self.heartbeat_interval
                )
            buckets: List[Dict[str, object]] = [
                {"le": edge, "count": self._shard_wall_counts[position]}
                for position, edge in enumerate(_SHARD_WALL_BUCKETS)
            ]
            buckets.append({"le": None, "count": self._shard_wall_counts[-1]})
            return {
                "service": snapshot,
                "engine": self._engine_metrics,
                "shard_wall_seconds": {
                    "buckets": buckets,
                    "sum": self._shard_wall_sum,
                    "count": self._shard_wall_count,
                },
            }

    def prometheus_text(self) -> str:
        """The ``/metrics`` body under ``Accept: text/plain``."""
        return render_prometheus(self.metrics_payload(), self.health_payload())

    def health_payload(self) -> Dict[str, object]:
        """The ``GET /healthz`` payload."""
        with self._lock:
            uptime = None
            if self._started_monotonic is not None:
                uptime = time.monotonic() - self._started_monotonic
            return {
                "status": "ok",
                "state": "draining" if self._draining else "serving",
                "sweeps": len(self._sweeps),
                "workers": self.workers,
                "kernel": self.kernel,
                "version": __version__,
                "uptime_seconds": uptime,
            }

    def submit_payload(self, body: bytes) -> Dict[str, object]:
        """Handle a ``POST /sweeps`` body; returns the submission receipt."""
        payload = load_json(body, "sweep submission")
        cells = cells_from_payload(payload.get("cells"))
        shard_size = payload.get("shard_size")
        sweep_id = self.submit(
            cells,
            shard_size=shard_size,
            heartbeat_interval=payload.get("heartbeat_interval"),
            kernel=payload.get("kernel"),
        )
        with self._lock:
            sweep = self._sweeps[sweep_id]
            return {
                "id": sweep_id,
                "cells": len(sweep.cells),
                "shards": sum(len(shards) for shards in sweep.shards),
                "cached_cells": sum(sweep.cell_cached),
                "state": sweep.state,
            }


class _ServiceHTTPServer(ThreadingHTTPServer):
    """Threaded listener with a back-pointer to the owning service."""

    daemon_threads = True
    allow_reuse_address = True
    service: "SweepService"


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes the HTTP API onto :class:`SweepService` methods.

    One request class per route table: errors map to structured JSON
    (``ConfigurationError`` → 400, unknown sweep → 404, draining → 503)
    instead of HTML stack traces.
    """

    protocol_version = "HTTP/1.1"
    server: _ServiceHTTPServer

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #

    def log_message(self, format: str, *args: object) -> None:
        """Silence per-request stderr logging (the daemon is not a log)."""

    def _respond(self, status: int, payload: Dict[str, object]) -> None:
        body = dump_json(payload)
        self.send_response(status)
        self.send_header("Content-Type", JSON_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _respond_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._respond(status, {"error": message})

    def _dispatch(self, method: str) -> None:
        split = urlsplit(self.path)
        parts = [part for part in split.path.split("/") if part]
        query = parse_qs(split.query)
        service = self.server.service
        try:
            if method == "GET" and parts == ["healthz"]:
                self._respond(200, service.health_payload())
            elif method == "GET" and parts == ["metrics"]:
                # Content negotiation: JSON by default, Prometheus text
                # exposition for scrapers sending Accept: text/plain.
                accept = self.headers.get("Accept") or ""
                if "text/plain" in accept:
                    self._respond_text(200, service.prometheus_text())
                else:
                    self._respond(200, service.metrics_payload())
            elif method == "GET" and parts == ["sweeps"]:
                self._respond(200, service.list_sweeps())
            elif method == "POST" and parts == ["sweeps"]:
                length = int(self.headers.get("Content-Length") or 0)
                body = self.rfile.read(length) if length else b""
                self._respond(200, service.submit_payload(body))
            elif method == "GET" and len(parts) == 2 and parts[0] == "sweeps":
                self._respond(200, service.sweep_status(parts[1]))
            elif (
                method == "GET"
                and len(parts) == 3
                and parts[0] == "sweeps"
                and parts[2] == "events"
            ):
                cursor = int(query.get("cursor", ["0"])[0])
                timeout = float(query.get("timeout", ["10"])[0])
                self._respond(
                    200, service.wait_events(parts[1], cursor, timeout)
                )
            elif (
                method == "GET"
                and len(parts) == 3
                and parts[0] == "sweeps"
                and parts[2] == "outcomes"
            ):
                cell = int(query.get("cell", ["0"])[0])
                self._respond(
                    200, service.cell_outcome_payload(parts[1], cell)
                )
            elif (
                method == "GET"
                and len(parts) == 3
                and parts[0] == "sweeps"
                and parts[2] == "spans"
            ):
                self._respond(200, service.spans_payload(parts[1]))
            elif (
                method == "POST"
                and len(parts) == 3
                and parts[0] == "sweeps"
                and parts[2] == "cancel"
            ):
                self._respond(200, service.cancel(parts[1]))
            else:
                self._error(404, f"no route for {method} {split.path}")
        except KeyError as error:
            self._error(404, f"unknown sweep id: {error.args[0]}")
        except ConfigurationError as error:
            self._error(400, str(error))
        except ServiceError as error:
            message = str(error)
            status = 503 if "draining" in message else 409
            self._error(status, message)
        except ValueError as error:
            self._error(400, f"bad query parameter: {error}")
        except ReproError as error:
            self._error(500, f"{type(error).__name__}: {error}")
        except Exception as error:  # pragma: no cover - defensive
            self._error(500, f"internal error: {type(error).__name__}: {error}")

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("POST")
