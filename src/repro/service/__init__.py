""""Repro as a service": a distributed sweep daemon over the execution layer.

The :mod:`repro.exec` backends already made sweep execution a strategy —
this package makes it a *service*.  :class:`SweepService` is a stdlib-only
HTTP daemon (``repro serve``) that accepts sweeps of
:class:`~repro.exec.ExecutionCell` specs, shards them across a worker-thread
pool, caches every executed outcome content-addressed by
:func:`~repro.exec.cell_signature`, re-queues shards lost to worker crashes
or timeouts, and streams per-cell/per-shard progress in the telemetry JSONL
schema.  :class:`ServiceBackend` is the matching
:class:`~repro.exec.ExecutionBackend` (spec ``"service:URL"``), so every
sweep entry point can execute remotely — with records byte-identical to the
sequential loop, like every other backend.

Module map:

* :mod:`~repro.service.server` — the daemon: HTTP routes, job queue,
  worker pool, watchdog, graceful drain;
* :mod:`~repro.service.client` — :class:`ServiceClient` (raw API),
  :class:`ServiceBackend` (the backend), :func:`tail_service`
  (``repro tail --url``);
* :mod:`~repro.service.cache` — the content-addressed
  :class:`ResultCache` (hit/miss counters, determinism verification);
* :mod:`~repro.service.faults` — :class:`ServiceFaultInjector`
  (``REPRO_SERVICE_FAULTS``) for exercising the retry and watchdog paths
  (``crash``, ``hang-silent``, ``hang-beating``);
* :mod:`~repro.service.prometheus` — the ``Accept: text/plain`` rendering
  of ``/metrics`` (Prometheus text exposition);
* :mod:`~repro.service.dashboard` — ``repro top --url``: a polled
  terminal dashboard over ``/healthz`` + ``/metrics`` + ``/sweeps``;
* :mod:`~repro.service.wire` — shared JSON/pickle wire helpers.

With ``heartbeat_interval`` set (``repro serve --heartbeat``, or per
submission) the daemon's workers emit in-flight heartbeats: ``GET
/sweeps/{id}`` grows live per-shard progress rows, the event stream
carries throttled ``"progress"`` records, and the watchdog becomes
*liveness-based* — a beating shard pushes its deadline forward and is
never re-queued at ``shard_timeout``; only silent shards are.
"""

from repro.service.cache import ResultCache
from repro.service.client import ServiceBackend, ServiceClient, tail_service
from repro.service.faults import InjectedWorkerCrash, ServiceFaultInjector
from repro.service.server import SweepService

__all__ = [
    "InjectedWorkerCrash",
    "ResultCache",
    "ServiceBackend",
    "ServiceClient",
    "ServiceFaultInjector",
    "SweepService",
    "tail_service",
]
