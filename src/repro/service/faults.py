"""Deterministic fault injection for exercising the service's retry path.

A sweep service that re-queues lost shards is only trustworthy if the
retry path is actually tested — and worker loss is awkward to produce on
demand.  :class:`ServiceFaultInjector` makes it reproducible: the daemon
consults the injector at the start of every shard attempt, and the
injector either lets it pass, *crashes* it (raises
:class:`InjectedWorkerCrash`, which the worker loop treats exactly like
any other worker death), or *hangs* it (sleeps past the per-shard timeout
so the watchdog's re-queue path fires).

Faults are addressed by ``(cell_index, shard_index)`` and armed a fixed
number of times **per sweep**, so "kill the first attempt of shard 2 of
cell 0" is one directive and the retried attempt sails through.  The
directive language (``REPRO_SERVICE_FAULTS`` environment variable, or the
equivalent constructor spec) is::

    crash:CELL:SHARD[:COUNT]          # raise on the first COUNT attempts
    hang:CELL:SHARD:SECONDS[:COUNT]   # sleep SECONDS on the first COUNT attempts
    hang-silent:CELL:SHARD:SECONDS[:COUNT]   # alias for hang: no heartbeats
    hang-beating:CELL:SHARD:SECONDS[:COUNT]  # sleep SECONDS but keep pulsing
                                             # the ambient heartbeat emitter

with multiple directives separated by ``;``.  The two ``hang-`` flavours
exist to pin the watchdog's *liveness* semantics: a ``hang-silent`` shard
goes quiet and must be re-queued at ``shard_timeout``, while a
``hang-beating`` shard (slow but alive — it pulses
:meth:`~repro.telemetry.heartbeat.HeartbeatEmitter.pulse` every 50 ms)
keeps extending its deadline and must *not* be killed.  Because determinism makes
retries safe, a test (or the CI smoke step) asserts the faulted sweep's
records are byte-identical to an unfaulted run — the property that makes
the whole fault-tolerance story honest.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ServiceError
from repro.telemetry.heartbeat import current_heartbeat

__all__ = ["InjectedWorkerCrash", "ServiceFaultInjector"]


class InjectedWorkerCrash(ServiceError):
    """The simulated worker death a ``crash:`` directive raises."""


@dataclass(frozen=True)
class _Fault:
    """One armed directive: what to do, where, and how many times."""

    kind: str  # "crash" | "hang"
    cell_index: int
    shard_index: int
    count: int = 1
    seconds: float = 0.0


def _parse_directive(token: str) -> _Fault:
    parts = token.strip().split(":")
    kind = parts[0].strip().lower() if parts else ""
    if kind == "hang-silent":
        kind = "hang"  # the historical hang was always silent
    try:
        if kind == "crash" and len(parts) in (3, 4):
            count = int(parts[3]) if len(parts) == 4 else 1
            return _Fault(
                kind="crash",
                cell_index=int(parts[1]),
                shard_index=int(parts[2]),
                count=count,
            )
        if kind in ("hang", "hang-beating") and len(parts) in (4, 5):
            count = int(parts[4]) if len(parts) == 5 else 1
            return _Fault(
                kind=kind,
                cell_index=int(parts[1]),
                shard_index=int(parts[2]),
                count=count,
                seconds=float(parts[3]),
            )
    except ValueError:
        pass
    raise ConfigurationError(
        f"invalid fault directive {token!r}; expected "
        f"'crash:CELL:SHARD[:COUNT]', 'hang:CELL:SHARD:SECONDS[:COUNT]', "
        f"'hang-silent:CELL:SHARD:SECONDS[:COUNT]' or "
        f"'hang-beating:CELL:SHARD:SECONDS[:COUNT]'"
    )


class ServiceFaultInjector:
    """Arms crash/hang faults against shard attempts, per sweep.

    Thread-safe: worker threads call :meth:`on_attempt` concurrently; the
    remaining-count bookkeeping is guarded by one lock (the sleep of a
    ``hang`` fault happens outside it).
    """

    def __init__(self, faults: Sequence[_Fault]) -> None:
        self._faults: Dict[Tuple[int, int], _Fault] = {
            (fault.cell_index, fault.shard_index): fault for fault in faults
        }
        # Remaining trigger counts, keyed per sweep so every submitted
        # sweep sees the same fault pattern.
        self._remaining: Dict[Tuple[str, int, int], int] = {}
        self._lock = threading.Lock()

    @classmethod
    def from_spec(cls, spec: Optional[str]) -> Optional["ServiceFaultInjector"]:
        """Parse a ``;``-separated directive string (``None``/blank → ``None``)."""
        if spec is None or not spec.strip():
            return None
        faults = [
            _parse_directive(token)
            for token in spec.split(";")
            if token.strip()
        ]
        return cls(faults)

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> Optional["ServiceFaultInjector"]:
        """Build from ``REPRO_SERVICE_FAULTS`` (what ``repro serve`` reads)."""
        environ = os.environ if environ is None else environ
        return cls.from_spec(environ.get("REPRO_SERVICE_FAULTS"))

    def on_attempt(
        self, sweep_id: str, cell_index: int, shard_index: int, attempt: int
    ) -> None:
        """Crash or hang this attempt if a matching directive is still armed."""
        fault = self._faults.get((cell_index, shard_index))
        if fault is None:
            return
        key = (sweep_id, cell_index, shard_index)
        with self._lock:
            remaining = self._remaining.get(key, fault.count)
            if remaining <= 0:
                return
            self._remaining[key] = remaining - 1
        if fault.kind == "crash":
            raise InjectedWorkerCrash(
                f"injected worker crash on attempt {attempt} of shard "
                f"{shard_index} of cell {cell_index}"
            )
        if fault.kind == "hang-beating":
            self._hang_beating(fault.seconds)
            return
        time.sleep(fault.seconds)

    @staticmethod
    def _hang_beating(seconds: float) -> None:
        """Sleep ``seconds`` while pulsing the ambient heartbeat emitter.

        Simulates a shard that is slow but alive: a liveness-based
        watchdog must keep extending its deadline rather than re-queue
        it.  Without an ambient emitter (heartbeats off) this degrades
        to a plain silent hang.
        """
        emitter = current_heartbeat()
        deadline = time.monotonic() + seconds
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            time.sleep(min(0.05, remaining))
            if emitter is not None:
                emitter.pulse(engine="fault-injector")

    def __repr__(self) -> str:
        return f"ServiceFaultInjector({sorted(self._faults)})"
