"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so that
callers can catch library-specific failures without accidentally swallowing
programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ProtocolError(ReproError):
    """A protocol definition is inconsistent (e.g. missing transitions)."""


class SimulationError(ReproError):
    """The simulator was driven into an invalid configuration."""


class TopologyError(ReproError):
    """A graph is invalid for the requested operation (e.g. disconnected)."""


class ConfigurationError(ReproError):
    """An experiment or simulator configuration is invalid."""


class InvariantViolation(ReproError):
    """A deterministic property proved in the paper failed to hold.

    Raising this exception signals a bug in the implementation (or an
    intentionally adversarial initial configuration that violates Eq. (2) of
    the paper), never expected statistical noise.
    """


class ConvergenceError(ReproError):
    """An execution did not converge within the allowed number of rounds."""


class TraceError(ReproError):
    """An execution trace is malformed or does not contain requested data."""


class ServiceError(ReproError):
    """The sweep service rejected a request or a submitted sweep failed.

    Raised client-side (:mod:`repro.service.client`) for transport
    failures, non-2xx responses and sweeps that end in a terminal state
    other than ``done``; the server turns it (and
    :class:`ConfigurationError`) into structured JSON error responses
    instead of stack traces.
    """
