"""Execution cells: the unit of work every backend schedules.

A *cell* is one (protocol, graph) configuration together with the seeds of
all its replicas — exactly the granularity at which the sweeps behind the
paper's statistical claims are embarrassingly parallel.  Cells are plain
frozen dataclasses built from :class:`~repro.experiments.config.ProtocolSpecConfig`
and :class:`~repro.experiments.config.GraphSpec`, so they pickle cleanly and
can be shipped to spawn-started worker processes; the topology and protocol
objects are rebuilt inside the executing process from the same deterministic
seed derivations the per-trial loop uses, which keeps every backend's output
byte-identical under matched seeds.

Two executors share this module:

* :func:`execute_cell_sequential` — today's per-trial loop: one seeded
  single-replica run per seed;
* :func:`execute_cell_batched` — the batched path: all of the cell's
  replicas advance together through
  :class:`~repro.experiments.montecarlo.MonteCarloRunner` (which itself
  falls back to the loop for standalone runners).

Both return a :class:`CellOutcome`, whose per-seed results are
replica-for-replica identical between the two executors.

Cells also shard: :func:`split_cell` slices a cell's seed list into
independent sub-cells of at most ``shard_size`` seeds, and
:func:`merge_cell_outcomes` folds the executed shards back into one
outcome in original seed order.  Because every engine gives each replica
its own RNG stream (batch-size and order independence, pinned by the
parity harness), the merged outcome is byte-identical to running the
whole cell at once — records, batch arrays, observations and trace rows
included.  This is what lets :class:`~repro.exec.backends.ProcessBackend`
spread a single large cell across all of its workers instead of pinning
one core.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.batch.kernels import validate_kernel
from repro.batch.observers import (
    ObserverSpec,
    build_observers,
    merge_observations,
)
from repro.batch.results import BatchResult
from repro.beeping.simulator import SimulationResult
from repro.dynamics.schedules import ScheduleSpec, build_schedule
from repro.errors import ConfigurationError
from repro.graphs.generators import make_graph
from repro.graphs.topology import Topology

if TYPE_CHECKING:  # pragma: no cover
    # Typing-only: the experiments package imports the sweep runner, which
    # imports repro.exec — a module-level import here would be circular
    # (and would deadlock spawn workers unpickling cells).
    from repro.experiments.config import GraphSpec, ProtocolSpecConfig
    from repro.experiments.results import TrialRecord

#: Key material accepted by :func:`repro.experiments.seeds.rng_from`.
RngKey = Tuple[Union[int, str], ...]


@dataclass(frozen=True)
class ExecutionCell:
    """One (protocol, graph) configuration with all its replica seeds.

    Attributes
    ----------
    protocol, graph:
        Pure-data specs from which the executing process rebuilds the
        protocol and topology objects (both picklable, so cells are
        spawn-safe).
    seeds:
        One seed per replica, in deterministic replica order.
    max_rounds:
        Optional shared round budget (``None`` uses the engine default).
    planted_leaders:
        Optional node indices to start as planted leaders (the lower-bound
        experiment's adversarial initial states).  Negative indices count
        from the end of the node range, so ``(0, -1)`` plants the two
        diametral endpoints of a path without knowing ``n`` in advance.
    graph_rng_key:
        Optional override for the graph generator's seed derivation, as the
        key tuple handed to :func:`~repro.experiments.seeds.rng_from`.  The
        default reproduces the sweep runner's derivation
        ``(graph.seed, "graph", graph.family, graph.n)``.
    schedule:
        Optional :class:`~repro.dynamics.schedules.ScheduleSpec` describing
        a time-varying topology for the cell.  Like the graph spec it is
        pure data: the executing process (a worker, for ``process:N``)
        rebuilds the actual schedule against the cell's graph, so dynamic
        cells shard exactly like static ones.  Only constant-state beeping
        protocols support schedules.
    observers:
        Optional tuple of :class:`~repro.batch.observers.ObserverSpec`
        objects — again pure data: the executing process builds the actual
        batch observers, attaches them to whichever engine runs the cell,
        and ships each observer's result back in
        :attr:`CellOutcome.observations`.  Observed cells produce
        byte-identical observations on every backend (the sequential loop
        runs one ``R = 1`` observer per replica and merges).  Standalone
        runners (e.g. pipelined-ids) have no observation hooks and reject
        observed cells.
    kernel:
        Optional round-kernel spec for the batched engine
        (:func:`repro.batch.kernels.validate_kernel`: ``"auto"``,
        ``"numba"``, ``"numpy"``, ``"python"`` or ``"xp:<namespace>"``).
        Pure data like every other field, so the setting travels to spawn
        workers and over the service wire.  Records are kernel-invariant
        (the parity suite pins every kernel byte-identical to the
        sequential loop), so the kernel is **excluded from the cell
        signature** — cached outcomes are shared across kernel choices.
        ``None`` defers to the executing backend's default.
    """

    protocol: ProtocolSpecConfig
    graph: GraphSpec
    seeds: Tuple[int, ...]
    max_rounds: Optional[int] = None
    planted_leaders: Optional[Tuple[int, ...]] = None
    graph_rng_key: Optional[RngKey] = None
    schedule: Optional[ScheduleSpec] = None
    observers: Tuple[ObserverSpec, ...] = ()
    kernel: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "kernel", validate_kernel(self.kernel))
        object.__setattr__(self, "seeds", tuple(int(seed) for seed in self.seeds))
        if not self.seeds:
            raise ConfigurationError(
                f"cell {self.label!r} needs at least one replica seed"
            )
        if self.planted_leaders is not None:
            object.__setattr__(
                self,
                "planted_leaders",
                tuple(int(node) for node in self.planted_leaders),
            )
        if self.graph_rng_key is not None:
            object.__setattr__(self, "graph_rng_key", tuple(self.graph_rng_key))
        object.__setattr__(self, "observers", tuple(self.observers))
        for spec in self.observers:
            if not isinstance(spec, ObserverSpec):
                raise ConfigurationError(
                    f"cell observers must be ObserverSpec instances; got "
                    f"{type(spec).__name__}"
                )

    @property
    def graph_label(self) -> str:
        """Graph display label, qualified by the schedule when one is set.

        Dynamic cells render as e.g. ``"cycle(64)@edge-churn[seed=7]"`` so
        their records stay distinguishable from static runs of the same
        graph — the label is part of every :class:`TrialRecord`.
        """
        if self.schedule is None:
            return self.graph.label
        return f"{self.graph.label}@{self.schedule.label}"

    @property
    def label(self) -> str:
        """Display label such as ``"bfw on cycle(64)"``."""
        return f"{self.protocol.label} on {self.graph_label}"

    @property
    def num_replicas(self) -> int:
        """Number of seeded replicas in the cell."""
        return len(self.seeds)

    def build_topology(self) -> Topology:
        """Rebuild the cell's graph exactly as the per-trial loop would."""
        from repro.experiments.seeds import rng_from

        key = self.graph_rng_key
        if key is None:
            key = (self.graph.seed, "graph", self.graph.family, self.graph.n)
        return make_graph(self.graph.family, self.graph.n, rng=rng_from(*key))


def cell_to_spec(cell: ExecutionCell) -> Dict[str, object]:
    """Pure-JSON description of a cell — the sweep service's wire format.

    Every field of :class:`ExecutionCell` is already plain data (spec
    dataclasses, scalars, tuples); this flattens them into a dict of JSON
    types only (tuples become lists), so a cell can travel over an HTTP API
    or be written next to a cached result.  :func:`cell_from_spec` is the
    inverse — the round-tripped cell rebuilds the same topology, protocol,
    schedule and observers, and therefore the same records, as the
    original.
    """
    return {
        "protocol": {
            "name": cell.protocol.name,
            "params": dict(cell.protocol.params),
        },
        "graph": {
            "family": cell.graph.family,
            "n": cell.graph.n,
            "seed": cell.graph.seed,
        },
        "seeds": list(cell.seeds),
        "max_rounds": cell.max_rounds,
        "planted_leaders": (
            None if cell.planted_leaders is None else list(cell.planted_leaders)
        ),
        "graph_rng_key": (
            None if cell.graph_rng_key is None else list(cell.graph_rng_key)
        ),
        "schedule": (
            None
            if cell.schedule is None
            else {"kind": cell.schedule.kind, "params": dict(cell.schedule.params)}
        ),
        "observers": [
            {"kind": spec.kind, "params": dict(spec.params)}
            for spec in cell.observers
        ],
        "kernel": cell.kernel,
    }


def _spec_section(spec: Mapping[str, object], key: str, what: str) -> Mapping[str, object]:
    value = spec.get(key)
    if not isinstance(value, Mapping):
        raise ConfigurationError(
            f"cell spec {what} must carry a {key!r} object; got {value!r}"
        )
    return value


def cell_from_spec(spec: Mapping[str, object]) -> ExecutionCell:
    """Rebuild an :class:`ExecutionCell` from its :func:`cell_to_spec` dict.

    Accepts exactly what :func:`cell_to_spec` emits (after any JSON
    round-trip: lists where the cell held tuples).  Malformed specs raise
    :class:`~repro.errors.ConfigurationError` naming the offending field,
    so an HTTP daemon can turn them into a clean 400 instead of a stack
    trace.
    """
    from repro.experiments.config import GraphSpec, ProtocolSpecConfig

    if not isinstance(spec, Mapping):
        raise ConfigurationError(f"cell spec must be an object; got {spec!r}")
    protocol_spec = _spec_section(spec, "protocol", "protocol")
    if "name" not in protocol_spec:
        raise ConfigurationError("cell spec protocol is missing its 'name'")
    graph_spec = _spec_section(spec, "graph", "graph")
    for required in ("family", "n"):
        if required not in graph_spec:
            raise ConfigurationError(
                f"cell spec graph is missing its {required!r}"
            )
    seeds = spec.get("seeds")
    if not isinstance(seeds, (list, tuple)) or not seeds:
        raise ConfigurationError(
            f"cell spec needs a non-empty 'seeds' list; got {seeds!r}"
        )
    schedule_spec = spec.get("schedule")
    schedule = None
    if schedule_spec is not None:
        schedule_spec = _spec_section(spec, "schedule", "schedule")
        if "kind" not in schedule_spec:
            raise ConfigurationError("cell spec schedule is missing its 'kind'")
        schedule = ScheduleSpec(
            kind=str(schedule_spec["kind"]),
            params=dict(schedule_spec.get("params") or {}),
        )
    observers: List[ObserverSpec] = []
    for index, observer_spec in enumerate(spec.get("observers") or ()):
        if not isinstance(observer_spec, Mapping) or "kind" not in observer_spec:
            raise ConfigurationError(
                f"cell spec observer #{index} must be an object with a "
                f"'kind'; got {observer_spec!r}"
            )
        observers.append(
            ObserverSpec(
                kind=str(observer_spec["kind"]),
                params=dict(observer_spec.get("params") or {}),
            )
        )
    planted = spec.get("planted_leaders")
    graph_rng_key = spec.get("graph_rng_key")
    max_rounds = spec.get("max_rounds")
    return ExecutionCell(
        protocol=ProtocolSpecConfig(
            name=str(protocol_spec["name"]),
            params=dict(protocol_spec.get("params") or {}),
        ),
        graph=GraphSpec(
            family=str(graph_spec["family"]),
            n=int(graph_spec["n"]),
            seed=int(graph_spec.get("seed", 0)),
        ),
        seeds=tuple(int(seed) for seed in seeds),
        max_rounds=None if max_rounds is None else int(max_rounds),
        planted_leaders=None if planted is None else tuple(int(p) for p in planted),
        graph_rng_key=None if graph_rng_key is None else tuple(graph_rng_key),
        schedule=schedule,
        observers=tuple(observers),
        kernel=None if spec.get("kernel") is None else str(spec["kernel"]),
    )


def canonical_cell_json(cell: ExecutionCell) -> str:
    """The canonical JSON rendering of a cell: sorted keys, no whitespace.

    This is the byte string :func:`cell_signature` hashes, so two cells
    produce the same canonical JSON exactly when every field that affects
    execution — protocol and params, graph spec, seed *order*, round
    budget, planted leaders, graph RNG key, schedule spec, observer specs —
    is equal.  Non-JSON parameter values fall back to ``str`` so exotic
    params still hash deterministically.

    The ``kernel`` field is **stripped** before hashing: every kernel is
    parity-pinned byte-identical to the sequential loop, so a cell's
    records do not depend on it — the same cached outcome serves a
    resubmission under any kernel, and signatures minted before the
    kernel seam existed stay valid.
    """
    spec = cell_to_spec(cell)
    spec.pop("kernel", None)
    return json.dumps(spec, sort_keys=True, separators=(",", ":"), default=str)


def cell_signature(cell: ExecutionCell) -> str:
    """Content hash of a cell: equal cells hash equal, any change differs.

    The signature keys the sweep service's result cache — because every
    backend is deterministic under matched seeds, a cell's signature fully
    determines its records, so a cached outcome can be served for any
    resubmission of the same cell.  It is the SHA-256 hex digest of
    :func:`canonical_cell_json`, so it is stable across processes, hosts
    and Python versions.
    """
    digest = hashlib.sha256(canonical_cell_json(cell).encode("utf-8"))
    return digest.hexdigest()


@dataclass(frozen=True)
class CellOutcome:
    """Everything one executed cell produced, in replica order.

    Exactly one of ``batch`` / ``sequential_results`` is populated, so a
    process-pool worker ships each replica's outcome once — the
    :attr:`results` view is derived on access rather than duplicated into
    the pickle payload.

    Attributes
    ----------
    cell:
        The cell that was executed.
    n, diameter, topology_name:
        Properties of the graph instance actually built (families with
        structured sizes may round the requested ``n``).
    batch:
        The underlying :class:`~repro.batch.results.BatchResult` when the
        cell ran through a batched executor (``None`` on the sequential
        path).
    batched:
        Whether a batched engine actually advanced the replicas (standalone
        runners fall back to the loop even under batched executors).
    sequential_results:
        The per-seed results of the sequential executor (``None`` on the
        batched path, where they are derived from ``batch``).
    observations:
        One observation per entry of ``cell.observers`` (in spec order) —
        e.g. a :class:`~repro.batch.trace.BatchTrace` for a ``"trace"``
        spec.  ``None`` when the cell carries no observer specs.
    wall_seconds:
        Wall-clock seconds the executing process spent on the cell (graph
        build included).  Excluded from equality: the same cell executed
        twice produces equal outcomes however long each run took.
    metrics:
        The :meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot` of the
        run metrics sampled while the cell executed (engine rounds advanced,
        cache hit rates, per-engine wall time).  Plain dicts, so the
        snapshot pickles from process-pool workers; excluded from equality
        like ``wall_seconds``.
    """

    cell: ExecutionCell
    n: int
    diameter: int
    topology_name: str
    batch: Optional[BatchResult] = None
    batched: bool = False
    sequential_results: Optional[Tuple[SimulationResult, ...]] = None
    observations: Optional[Tuple[object, ...]] = None
    wall_seconds: Optional[float] = field(default=None, compare=False)
    metrics: Optional[Dict[str, Dict[str, float]]] = field(
        default=None, compare=False
    )

    @property
    def rounds_advanced(self) -> int:
        """Total replica-rounds the cell advanced (summed over replicas)."""
        if self.batch is not None:
            return int(self.batch.rounds_executed.sum())
        return int(sum(result.rounds_executed for result in self.results))

    @property
    def results(self) -> Tuple[SimulationResult, ...]:
        """One result per seed, in seed order — identical on every backend.

        Derived from ``batch`` on first access and memoized (progress hooks
        and record flattening both read it), without becoming part of the
        dataclass state — a worker-side outcome pickles only the batch.
        """
        if self.sequential_results is not None:
            return self.sequential_results
        cached = self.__dict__.get("_results_cache")
        if cached is None:
            assert self.batch is not None
            cached = self.batch.to_simulation_results()
            object.__setattr__(self, "_results_cache", cached)
        return cached

    def to_records(self) -> Tuple[TrialRecord, ...]:
        """Flatten the outcome into per-trial sweep records (memoized)."""
        from repro.experiments.results import TrialRecord

        cached = self.__dict__.get("_records_cache")
        if cached is None:
            cached = tuple(
                TrialRecord(
                    protocol=self.cell.protocol.label,
                    graph=self.cell.graph_label,
                    n=self.n,
                    diameter=self.diameter,
                    seed=seed,
                    converged=result.converged,
                    convergence_round=result.convergence_round,
                    rounds_executed=result.rounds_executed,
                )
                for seed, result in zip(self.cell.seeds, self.results)
            )
            object.__setattr__(self, "_records_cache", cached)
        return cached


#: What a caller may pass as ``shard_size``: ``None`` (no sharding), a
#: positive int (max seeds per shard) or ``"auto"`` (``ceil(R / workers)``).
ShardSize = Union[int, str, None]


def resolve_shard_size(
    shard_size: ShardSize, num_replicas: int, workers: int = 1
) -> Optional[int]:
    """Resolve a shard-size setting to a concrete per-cell value.

    ``None`` means no sharding; ``"auto"`` resolves to
    ``ceil(num_replicas / workers)`` (minimum 1), which splits a cell into
    exactly as many shards as there are workers to run them — the setting
    ``--shard-size auto`` surfaces on the CLI.  Explicit integers must be
    positive and are returned unchanged.
    """
    if shard_size is None:
        return None
    if isinstance(shard_size, str):
        text = shard_size.strip().lower()
        if text == "auto":
            return max(1, math.ceil(num_replicas / max(1, int(workers))))
        try:
            shard_size = int(text)
        except ValueError:
            raise ConfigurationError(
                f"invalid shard size {shard_size!r}; expected a positive "
                f"integer or 'auto'"
            ) from None
    size = int(shard_size)
    if size < 1:
        raise ConfigurationError(f"shard size must be >= 1; got {size}")
    return size


def split_cell(
    cell: ExecutionCell, shard_size: Optional[int]
) -> Tuple[ExecutionCell, ...]:
    """Slice a cell's seed list into sub-cells of at most ``shard_size`` seeds.

    Everything except the seed tuple is shared (specs are immutable pure
    data), so shards stay picklable and rebuild the same topology, protocol,
    schedule and observers as the whole cell.  ``None`` (or any size that
    covers the whole cell) returns the cell itself.
    """
    if shard_size is not None and shard_size < 1:
        raise ConfigurationError(f"shard size must be >= 1; got {shard_size}")
    if shard_size is None or cell.num_replicas <= shard_size:
        return (cell,)
    return tuple(
        replace(cell, seeds=cell.seeds[start : start + shard_size])
        for start in range(0, cell.num_replicas, shard_size)
    )


def merge_cell_outcomes(
    cell: ExecutionCell, outcomes: Sequence[CellOutcome]
) -> CellOutcome:
    """Fold executed shard outcomes back into one outcome for ``cell``.

    The shards must cover the cell's seed list in order (what
    :func:`split_cell` produces).  Batch arrays are concatenated
    (:meth:`~repro.batch.results.BatchResult.concatenate`), observations are
    merged per spec through the observer kinds' ``merge_results`` (the same
    mechanism the sequential executor uses for its ``R = 1`` runs), wall
    seconds add up and metrics snapshots merge counter-wise — so the merged
    outcome's records, batch, traces and reducer outputs are byte-identical
    to executing the whole cell at once.

    One visible difference is tolerated by design: a state-aware dynamic
    cell executed whole falls back to the sequential path for ``R > 1``,
    while its ``R = 1`` shards run batched — identical records either way
    (the documented parity contract), so the merged outcome may carry a
    ``batch`` where the unsharded run carried ``sequential_results``.
    """
    from repro.telemetry.metrics import merge_snapshots

    outcomes = tuple(outcomes)
    if not outcomes:
        raise ConfigurationError(
            f"cannot merge 0 shard outcomes for cell {cell.label!r}"
        )
    covered = tuple(
        seed for outcome in outcomes for seed in outcome.cell.seeds
    )
    if covered != cell.seeds:
        raise ConfigurationError(
            f"shard outcomes do not cover cell {cell.label!r} in seed order: "
            f"expected {cell.seeds}, got {covered}"
        )
    if len(outcomes) == 1 and outcomes[0].cell == cell:
        return outcomes[0]
    first = outcomes[0]
    walls = [o.wall_seconds for o in outcomes if o.wall_seconds is not None]
    wall_seconds = float(sum(walls)) if walls else None
    observations: Optional[Tuple[object, ...]] = None
    if cell.observers:
        observations = tuple(
            merge_observations(
                spec, [outcome.observations[index] for outcome in outcomes]
            )
            for index, spec in enumerate(cell.observers)
        )
    common = dict(
        cell=cell,
        n=first.n,
        diameter=first.diameter,
        topology_name=first.topology_name,
        observations=observations,
        wall_seconds=wall_seconds,
        metrics=merge_snapshots([o.metrics for o in outcomes]),
    )
    if all(outcome.batch is not None for outcome in outcomes):
        return CellOutcome(
            batch=BatchResult.concatenate([o.batch for o in outcomes]),
            batched=all(outcome.batched for outcome in outcomes),
            **common,
        )
    return CellOutcome(
        sequential_results=tuple(
            result for outcome in outcomes for result in outcome.results
        ),
        batched=False,
        **common,
    )


def _build_cell(cell: ExecutionCell):
    """Topology, protocol, planted initial states and schedule for a cell."""
    from repro.beeping.adversary import planted_leaders_initial_states
    from repro.core.protocol import BeepingProtocol
    from repro.experiments.runner import instantiate_protocol

    topology = cell.build_topology()
    protocol = instantiate_protocol(
        cell.protocol.name, topology, dict(cell.protocol.params)
    )
    initial_states = None
    if cell.planted_leaders is not None:
        initial_states = planted_leaders_initial_states(
            topology, tuple(node % topology.n for node in cell.planted_leaders)
        )
    schedule = None
    if cell.schedule is not None:
        if not isinstance(protocol, BeepingProtocol):
            raise ConfigurationError(
                f"topology schedules require a constant-state beeping "
                f"protocol; got {type(protocol).__name__} for cell "
                f"{cell.label!r}"
            )
        schedule = build_schedule(cell.schedule, topology)
    return topology, protocol, initial_states, schedule


def execute_cell_sequential(cell: ExecutionCell) -> CellOutcome:
    """Run the cell's replicas one seeded single run at a time.

    Observed cells run every replica with its own fresh ``R = 1`` observers
    (built from the cell's specs) and merge the per-replica observations —
    byte-identical to what one batched run of the same cell observes.
    """
    from repro.beeping.engine import VectorizedEngine
    from repro.beeping.simulator import MemorySimulator
    from repro.core.protocol import BeepingProtocol, MemoryProtocol
    from repro.experiments.runner import run_protocol_on
    from repro.telemetry.metrics import MetricsRegistry, use_metrics

    # A fresh registry per cell: the engines sample into it at run end, and
    # the snapshot rides the outcome (and the CellCompleted event) back to
    # the caller — including across process-pool pickling.
    started = time.perf_counter()
    registry = MetricsRegistry()
    with use_metrics(registry):
        topology, protocol, initial_states, schedule = _build_cell(cell)
        observed = bool(cell.observers)
        per_seed_observations: List[Tuple[object, ...]] = []

        def with_observers(
            run_one: "Callable[[Tuple[object, ...]], SimulationResult]",
        ):
            observers = build_observers(cell.observers) if observed else ()
            result = run_one(observers)
            if observed:
                per_seed_observations.append(
                    tuple(observer.result() for observer in observers)
                )
            return result

        if initial_states is not None or schedule is not None or (
            observed and isinstance(protocol, BeepingProtocol)
        ):
            if not isinstance(protocol, BeepingProtocol):
                raise ConfigurationError(
                    f"planted leaders require a constant-state beeping protocol; "
                    f"got {type(protocol).__name__}"
                )
            # One engine (and one schedule instance) for every seed: replica-
            # independent schedules memoise their per-round graphs, so all of
            # the cell's replicas replay one rebuild per round.
            engine = VectorizedEngine(topology, protocol, schedule=schedule)
            results = tuple(
                with_observers(
                    lambda observers, seed=seed: engine.run(
                        max_rounds=cell.max_rounds,
                        rng=seed,
                        initial_states=initial_states,
                        observers=observers,
                    )
                )
                for seed in cell.seeds
            )
        elif observed and isinstance(protocol, MemoryProtocol):
            simulator = MemorySimulator(topology, protocol)
            results = tuple(
                with_observers(
                    lambda observers, seed=seed: simulator.run(
                        max_rounds=cell.max_rounds, rng=seed, observers=observers
                    )
                )
                for seed in cell.seeds
            )
        elif observed:
            raise ConfigurationError(
                f"cell {cell.label!r} attaches observers, but standalone runners "
                f"({type(protocol).__name__}) have no observation hooks"
            )
        else:
            results = tuple(
                run_protocol_on(
                    topology, protocol, rng=seed, max_rounds=cell.max_rounds
                )
                for seed in cell.seeds
            )

        observations: Optional[Tuple[object, ...]] = None
        if observed:
            observations = tuple(
                merge_observations(
                    spec, [row[index] for row in per_seed_observations]
                )
                for index, spec in enumerate(cell.observers)
            )
    return CellOutcome(
        cell=cell,
        n=topology.n,
        diameter=topology.diameter(),
        topology_name=topology.name,
        sequential_results=results,
        observations=observations,
        wall_seconds=time.perf_counter() - started,
        metrics=registry.snapshot(),
    )


def execute_cell_batched(cell: ExecutionCell) -> CellOutcome:
    """Advance all of the cell's replicas in one batched state array.

    Replica for replica identical to :func:`execute_cell_sequential` under
    matched seeds (see ``tests/batch/parity_harness.py``); standalone
    runners without a batch implementation keep the per-seed loop inside
    :class:`~repro.experiments.montecarlo.MonteCarloRunner`.
    """
    from repro.experiments.montecarlo import MonteCarloRunner, runs_batched
    from repro.telemetry.metrics import MetricsRegistry, use_metrics

    started = time.perf_counter()
    registry = MetricsRegistry()
    with use_metrics(registry):
        topology, protocol, initial_states, schedule = _build_cell(cell)
        if schedule is not None and schedule.state_aware and cell.num_replicas > 1:
            # A state-aware schedule's graph sequence depends on one replica's
            # states, so the batched engine cannot share its per-round adjacency
            # across the batch; the sequential executor runs each replica with
            # its own per-run schedule reset — identical records, so the
            # every-backend byte-parity contract holds for these cells too.
            # (That executor installs its own nested registry and finalises
            # the outcome's wall time and metrics itself.)
            return execute_cell_sequential(cell)
        observers = build_observers(cell.observers)
        batch = MonteCarloRunner(max_rounds=cell.max_rounds).run(
            topology,
            protocol,
            list(cell.seeds),
            initial_states=initial_states,
            schedule=schedule,
            observers=observers,
            kernel=cell.kernel,
        )
        observations: Optional[Tuple[object, ...]] = None
        if observers:
            observations = tuple(observer.result() for observer in observers)
    return CellOutcome(
        cell=cell,
        n=topology.n,
        diameter=topology.diameter(),
        topology_name=topology.name,
        batch=batch,
        batched=runs_batched(protocol),
        observations=observations,
        wall_seconds=time.perf_counter() - started,
        metrics=registry.snapshot(),
    )
