"""Pluggable execution backends for the experiment sweeps.

Every statistical claim of the paper is reproduced from sweeps over
(protocol, graph, seeds) *cells*.  This package owns how those cells are
executed, behind one API:

* :class:`~repro.exec.cells.ExecutionCell` — the pure-data unit of work
  (spec pair + replica seeds), spawn-safe by construction;
* :class:`~repro.exec.base.ExecutionBackend` — the strategy contract:
  ``run_cells(cells) -> records`` plus a backend-mediated
  :class:`~repro.exec.base.CellCompleted` progress hook;
* :class:`~repro.exec.backends.SequentialBackend` /
  :class:`~repro.exec.backends.BatchedBackend` /
  :class:`~repro.exec.backends.ProcessBackend` — the three shipped
  strategies (per-trial loop, one batched state array per cell, cells
  sharded across a process pool);
* :func:`~repro.exec.backends.resolve_backend` — spec strings
  (``"sequential"``, ``"batched"``, ``"process:4"``) to backend objects, so
  every experiment entry point and CLI flag shares one vocabulary.

All backends produce byte-identical records under matched seeds; choosing
one is purely a wall-clock decision.  Rule of thumb: ``sequential`` for a
handful of replicas or when debugging a single trial, ``batched`` for many
replicas of few cells, ``process:N`` for sweeps with several independent
cells (Table 1, scaling curves) on a multi-core machine.  With
``shard_size`` (``--shard-size``, ``"auto"`` = ``ceil(R / workers)``) the
process backend also parallelises *within* a cell: the seed list is split
into sub-cells (:func:`~repro.exec.cells.split_cell`), executed like any
other unit of work and merged back byte-identically
(:func:`~repro.exec.cells.merge_cell_outcomes`) — so a single montecarlo
cell with thousands of replicas saturates every worker.

With a ``heartbeat_interval`` (``--heartbeat``), backends additionally
stream in-flight :class:`~repro.exec.base.ShardProgress` events — engine
heartbeats sampled every K rounds — to the same progress hook while cells
are still executing (the process backend ships them over a shared
multiprocessing queue).  Heartbeats never consume randomness, so records
stay byte-identical with them on or off.
"""

from repro.batch.observers import ObserverSpec
from repro.exec.base import (
    CellCompleted,
    ExecutionBackend,
    ProgressEvent,
    ProgressHook,
    ShardProgress,
)
from repro.exec.backends import (
    BackendSpec,
    BatchedBackend,
    ProcessBackend,
    SequentialBackend,
    resolve_backend,
    resolve_backend_with_deprecated_batched,
)
from repro.exec.cells import (
    CellOutcome,
    ExecutionCell,
    ShardSize,
    canonical_cell_json,
    cell_from_spec,
    cell_signature,
    cell_to_spec,
    execute_cell_batched,
    execute_cell_sequential,
    merge_cell_outcomes,
    resolve_shard_size,
    split_cell,
)

__all__ = [
    "BackendSpec",
    "BatchedBackend",
    "CellCompleted",
    "CellOutcome",
    "ExecutionBackend",
    "ExecutionCell",
    "ObserverSpec",
    "ProcessBackend",
    "ProgressEvent",
    "ProgressHook",
    "SequentialBackend",
    "ShardProgress",
    "ShardSize",
    "canonical_cell_json",
    "cell_from_spec",
    "cell_signature",
    "cell_to_spec",
    "execute_cell_batched",
    "execute_cell_sequential",
    "merge_cell_outcomes",
    "resolve_backend",
    "resolve_backend_with_deprecated_batched",
    "resolve_shard_size",
    "split_cell",
]
