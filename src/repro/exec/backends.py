"""The three shipped execution backends and the spec-string resolver.

* :class:`SequentialBackend` — today's per-trial loop: every replica of
  every cell is one seeded single run.  The reference semantics.
* :class:`BatchedBackend` — each cell's replicas advance together in one
  ``(R, n)`` state array (constant-state protocols through
  :class:`~repro.batch.engine.BatchedEngine`, supported memory baselines
  through :class:`~repro.batch.memory.BatchedMemoryEngine`, standalone
  runners fall back to the loop).  Fastest single-process option.
* :class:`ProcessBackend` — shards whole cells across a
  ``multiprocessing`` pool; each worker runs the batched cell path.  Cells
  are pure-data (spec pairs plus seeds), so the backend is spawn-safe, and
  outcomes are returned in deterministic cell order, keeping output
  byte-identical to the sequential loop under matched seeds.

:func:`resolve_backend` turns a backend instance or a spec string
(``"sequential"``, ``"batched"``, ``"process"``, ``"process:4"``) into a
backend object; :func:`resolve_backend_with_deprecated_batched` additionally
maps the legacy ``batched=`` boolean kwargs onto backends with a
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from typing import Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.exec.base import ExecutionBackend, ProgressHook, emit_progress
from repro.exec.cells import (
    CellOutcome,
    ExecutionCell,
    execute_cell_batched,
    execute_cell_sequential,
)

#: What a caller may pass as ``backend=``: an instance, a spec string, or
#: ``None`` for the entry point's default.
BackendSpec = Union[ExecutionBackend, str, None]


class SequentialBackend(ExecutionBackend):
    """One seeded single-replica run per seed — the reference semantics."""

    name = "sequential"

    def run_cell_outcomes(
        self,
        cells: Sequence[ExecutionCell],
        progress: Optional[ProgressHook] = None,
    ) -> Tuple[CellOutcome, ...]:
        cells = tuple(cells)
        outcomes = []
        for index, cell in enumerate(cells):
            outcome = execute_cell_sequential(cell)
            outcomes.append(outcome)
            emit_progress(progress, index, len(cells), outcome, self.name)
        return tuple(outcomes)


class BatchedBackend(ExecutionBackend):
    """All replicas of each cell advance in one batched state array."""

    name = "batched"

    def run_cell_outcomes(
        self,
        cells: Sequence[ExecutionCell],
        progress: Optional[ProgressHook] = None,
    ) -> Tuple[CellOutcome, ...]:
        cells = tuple(cells)
        outcomes = []
        for index, cell in enumerate(cells):
            outcome = execute_cell_batched(cell)
            outcomes.append(outcome)
            emit_progress(progress, index, len(cells), outcome, self.name)
        return tuple(outcomes)


def _execute_cell_in_worker(cell: ExecutionCell) -> CellOutcome:
    """Worker entry point: the batched cell path, importable by spawn."""
    return execute_cell_batched(cell)


class ProcessBackend(ExecutionBackend):
    """Shard whole cells across a ``multiprocessing`` pool.

    Parameters
    ----------
    workers:
        Pool size; defaults to the machine's CPU count.  The pool never
        exceeds the number of cells.
    mp_context:
        ``multiprocessing`` start method.  Defaults to ``"spawn"``, which
        works on every platform and proves the cells are pure-data; pass
        ``"fork"`` on POSIX to trade that guarantee for cheaper startup.

    Each worker executes the batched cell path, so per-cell results are the
    batched engine's — replica-for-replica identical to the sequential
    loop.  ``imap`` keeps delivery (and therefore record order and progress
    events) in deterministic cell order regardless of which worker finishes
    first.
    """

    def __init__(self, workers: Optional[int] = None, mp_context: str = "spawn"):
        if workers is None:
            workers = max(1, os.cpu_count() or 1)
        if int(workers) < 1:
            raise ConfigurationError(f"workers must be >= 1; got {workers}")
        self.workers = int(workers)
        self.mp_context = mp_context
        self.name = f"process:{self.workers}"

    def run_cell_outcomes(
        self,
        cells: Sequence[ExecutionCell],
        progress: Optional[ProgressHook] = None,
    ) -> Tuple[CellOutcome, ...]:
        cells = tuple(cells)
        if not cells:
            return ()
        pool_size = min(self.workers, len(cells))
        context = multiprocessing.get_context(self.mp_context)
        outcomes = []
        with context.Pool(processes=pool_size) as pool:
            for index, outcome in enumerate(
                pool.imap(_execute_cell_in_worker, cells, chunksize=1)
            ):
                outcomes.append(outcome)
                emit_progress(progress, index, len(cells), outcome, self.name)
        return tuple(outcomes)


def resolve_backend(
    spec: BackendSpec = None, default: BackendSpec = "sequential"
) -> ExecutionBackend:
    """Turn a backend instance or spec string into a backend object.

    Accepted spec strings: ``"sequential"``, ``"batched"``, ``"process"``
    (CPU-count workers) and ``"process:N"``.  ``None`` resolves to
    ``default``, so entry points can keep their historical default while
    accepting explicit overrides.
    """
    if spec is None:
        spec = default
    if isinstance(spec, ExecutionBackend):
        return spec
    if isinstance(spec, str):
        name, _, argument = spec.strip().partition(":")
        name = name.lower()
        if name == "sequential" and not argument:
            return SequentialBackend()
        if name == "batched" and not argument:
            return BatchedBackend()
        if name == "process":
            if not argument:
                return ProcessBackend()
            try:
                workers = int(argument)
            except ValueError:
                raise ConfigurationError(
                    f"invalid worker count {argument!r} in backend spec {spec!r}"
                ) from None
            return ProcessBackend(workers=workers)
    raise ConfigurationError(
        f"unknown execution backend {spec!r}; expected an ExecutionBackend "
        f"instance or one of 'sequential', 'batched', 'process[:N]'"
    )


def resolve_backend_with_deprecated_batched(
    backend: BackendSpec,
    batched: Optional[bool],
    default: BackendSpec = "sequential",
    what: str = "batched=",
) -> ExecutionBackend:
    """Resolve ``backend=`` while honouring the legacy ``batched=`` kwarg.

    ``batched=True`` maps to :class:`BatchedBackend` and ``batched=False``
    to :class:`SequentialBackend`, each with a :class:`DeprecationWarning`;
    passing both ``backend=`` and ``batched=`` is an error.
    """
    if batched is not None:
        warnings.warn(
            f"{what} is deprecated; pass backend='batched' (or any backend "
            f"spec / instance) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        if backend is not None:
            raise ConfigurationError(
                "pass either backend= or the deprecated batched=, not both"
            )
        backend = "batched" if batched else "sequential"
    return resolve_backend(backend, default=default)
