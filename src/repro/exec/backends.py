"""The three shipped execution backends and the spec-string resolver.

* :class:`SequentialBackend` — today's per-trial loop: every replica of
  every cell is one seeded single run.  The reference semantics.
* :class:`BatchedBackend` — each cell's replicas advance together in one
  ``(R, n)`` state array (constant-state protocols through
  :class:`~repro.batch.engine.BatchedEngine`, supported memory baselines
  through :class:`~repro.batch.memory.BatchedMemoryEngine`, standalone
  runners fall back to the loop).  Fastest single-process option.
* :class:`ProcessBackend` — shards work across a ``multiprocessing`` pool;
  each worker runs the batched cell path.  Cells are pure-data (spec pairs
  plus seeds), so the backend is spawn-safe, and outcomes are returned in
  deterministic cell order, keeping output byte-identical to the sequential
  loop under matched seeds.

Every backend accepts a ``shard_size``: a cell with more seeds than
``shard_size`` is split into independent sub-cells
(:func:`~repro.exec.cells.split_cell`), executed like any other unit of
work, and merged back (:func:`~repro.exec.cells.merge_cell_outcomes`) into
one outcome — byte-identical to the unsharded run.  For the process
backend this is what spreads a *single* large cell (e.g. one montecarlo
configuration with thousands of replicas) across all workers instead of
pinning one core; ``shard_size="auto"`` picks ``ceil(R / workers)`` per
cell.  Shards and whole small cells interleave in one work-unit list, and
the pool is clamped to the number of work units, never spawning idle
processes.

:func:`resolve_backend` turns a backend instance or a spec string
(``"sequential"``, ``"batched"``, ``"process"``, ``"process:4"``) into a
backend object; :func:`resolve_backend_with_deprecated_batched` additionally
maps the legacy ``batched=`` boolean kwargs onto backends with a
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import threading
import warnings
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.batch.kernels import validate_kernel
from repro.errors import ConfigurationError
from repro.exec.base import (
    ExecutionBackend,
    ProgressHook,
    ShardProgress,
    emit_progress,
)
from repro.exec.cells import (
    CellOutcome,
    ExecutionCell,
    ShardSize,
    execute_cell_batched,
    execute_cell_sequential,
    merge_cell_outcomes,
    resolve_shard_size,
    split_cell,
)

#: What a caller may pass as ``backend=``: an instance, a spec string, or
#: ``None`` for the entry point's default.
BackendSpec = Union[ExecutionBackend, str, None]


def _validate_shard_size(shard_size: ShardSize) -> ShardSize:
    """Check a shard-size setting once at construction time.

    ``"auto"`` stays symbolic (it resolves per cell against the worker
    count); integers are normalised and validated here so a bad setting
    fails fast instead of mid-sweep.
    """
    if shard_size is None:
        return None
    # Delegate validation; a symbolic "auto" resolves differently per cell,
    # so only the integer result of a non-auto setting is kept.
    resolved = resolve_shard_size(shard_size, num_replicas=1, workers=1)
    if isinstance(shard_size, str) and shard_size.strip().lower() == "auto":
        return "auto"
    return resolved


def _validate_heartbeat_interval(interval: Optional[int]) -> Optional[int]:
    """Check a heartbeat interval once at construction time.

    ``None`` keeps heartbeats off (the no-op fast path); anything else
    must be a positive round count.
    """
    if interval is None:
        return None
    try:
        value = int(interval)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"heartbeat interval must be a positive integer or None; "
            f"got {interval!r}"
        ) from None
    if value < 1:
        raise ConfigurationError(
            f"heartbeat interval must be >= 1; got {interval!r}"
        )
    return value


def _validate_kernel(kernel: Optional[str]) -> Optional[str]:
    """Check a backend-level kernel default once at construction time.

    ``None`` leaves cells untouched (engines resolve their own
    ``"auto"``); anything else must be a valid kernel spec.  Like the
    cell field, availability is checked in the executing process, not
    here — a client without numba may still target numba workers.
    """
    return validate_kernel(kernel)


def _stamp_kernel(
    cell: ExecutionCell, kernel: Optional[str]
) -> ExecutionCell:
    """Apply a backend's kernel default to a cell that does not set one.

    A cell's own ``kernel`` always wins (it was chosen when the cell was
    built and travels with it through sharding and the service wire); the
    backend default only fills the gap, so ``resolve_backend(kernel=...)``
    composes with per-cell overrides the same way ``shard_size`` does.
    """
    if kernel is None or cell.kernel is not None:
        return cell
    return replace(cell, kernel=kernel)


class _InProcessShardingMixin:
    """Shared sharded run loop for the two in-process backends."""

    shard_size: ShardSize = None
    heartbeat_interval: Optional[int] = None
    kernel: Optional[str] = None
    #: Worker count used by the ``"auto"`` shard-size rule (in-process
    #: backends execute one unit at a time, so auto never splits for them).
    workers: int = 1

    def _execute(self, cell: ExecutionCell) -> CellOutcome:  # pragma: no cover
        raise NotImplementedError

    def _execute_observed(
        self,
        shard: ExecutionCell,
        progress: Optional[ProgressHook],
        index: int,
        total: int,
        shard_index: Optional[int],
        shard_count: Optional[int],
    ) -> CellOutcome:
        """Execute one unit, streaming heartbeats to ``progress`` if enabled.

        The no-op fast path: without an interval (or without a hook to
        deliver to) this is exactly ``self._execute(shard)`` — no emitter
        is built and the engines see ``current_heartbeat() is None``.
        """
        if self.heartbeat_interval is None or progress is None:
            return self._execute(shard)
        from repro.telemetry.heartbeat import HeartbeatEmitter, use_heartbeat

        def ship(beat) -> None:
            progress(
                ShardProgress(
                    index=index,
                    total=total,
                    backend=self.name,
                    cell=shard,
                    heartbeat=beat,
                    shard_index=shard_index,
                    shard_count=shard_count,
                )
            )

        emitter = HeartbeatEmitter(self.heartbeat_interval, ship)
        with use_heartbeat(emitter):
            return self._execute(shard)

    def run_cell_outcomes(
        self,
        cells: Sequence[ExecutionCell],
        progress: Optional[ProgressHook] = None,
    ) -> Tuple[CellOutcome, ...]:
        cells = tuple(cells)
        outcomes = []
        for index, cell in enumerate(cells):
            cell = _stamp_kernel(cell, self.kernel)
            size = resolve_shard_size(
                self.shard_size, cell.num_replicas, self.workers
            )
            shards = split_cell(cell, size)
            shard_outcomes = []
            for shard_index, shard in enumerate(shards):
                shard_outcome = self._execute_observed(
                    shard,
                    progress,
                    index,
                    len(cells),
                    shard_index if len(shards) > 1 else None,
                    len(shards) if len(shards) > 1 else None,
                )
                shard_outcomes.append(shard_outcome)
                if len(shards) > 1:
                    emit_progress(
                        progress,
                        index,
                        len(cells),
                        shard_outcome,
                        self.name,
                        shard_index=shard_index,
                        shard_count=len(shards),
                    )
            outcome = merge_cell_outcomes(cell, shard_outcomes)
            outcomes.append(outcome)
            emit_progress(progress, index, len(cells), outcome, self.name)
        return tuple(outcomes)


class SequentialBackend(_InProcessShardingMixin, ExecutionBackend):
    """One seeded single-replica run per seed — the reference semantics."""

    name = "sequential"

    def __init__(
        self,
        shard_size: ShardSize = None,
        heartbeat_interval: Optional[int] = None,
        kernel: Optional[str] = None,
    ):
        self.shard_size = _validate_shard_size(shard_size)
        self.heartbeat_interval = _validate_heartbeat_interval(heartbeat_interval)
        # Kept for spec-threading symmetry: the sequential executor is the
        # kernel-independent reference, so the setting only rides along on
        # cells (engines it runs have no kernel seam).
        self.kernel = _validate_kernel(kernel)

    def _execute(self, cell: ExecutionCell) -> CellOutcome:
        return execute_cell_sequential(cell)


class BatchedBackend(_InProcessShardingMixin, ExecutionBackend):
    """All replicas of each cell advance in one batched state array."""

    name = "batched"

    def __init__(
        self,
        shard_size: ShardSize = None,
        heartbeat_interval: Optional[int] = None,
        kernel: Optional[str] = None,
    ):
        self.shard_size = _validate_shard_size(shard_size)
        self.heartbeat_interval = _validate_heartbeat_interval(heartbeat_interval)
        self.kernel = _validate_kernel(kernel)

    def _execute(self, cell: ExecutionCell) -> CellOutcome:
        return execute_cell_batched(cell)


def _execute_cell_in_worker(cell: ExecutionCell) -> CellOutcome:
    """Worker entry point: the batched cell path, importable by spawn."""
    return execute_cell_batched(cell)


#: Per-worker heartbeat wiring, populated by the pool initializer.  Module
#: state (not closure state) because spawn workers import this module fresh
#: and can only receive picklable initargs.
_WORKER_HEARTBEAT: Dict[str, object] = {"interval": None, "queue": None}


def _init_worker_heartbeat(interval: int, beat_queue: object) -> None:
    """Pool initializer: arm heartbeats inside a spawned worker."""
    _WORKER_HEARTBEAT["interval"] = interval
    _WORKER_HEARTBEAT["queue"] = beat_queue


def _execute_unit_in_worker(unit: Tuple[int, ExecutionCell]) -> CellOutcome:
    """Worker entry point with heartbeats: ships beats over the shared queue.

    Beats are tagged with the flat unit index; the parent maps that back to
    (cell, shard) — the worker knows nothing about sweep structure.  Queue
    failures drop the beat: heartbeats are best-effort observability and
    must never fail a shard.
    """
    unit_index, cell = unit
    interval = _WORKER_HEARTBEAT["interval"]
    beat_queue = _WORKER_HEARTBEAT["queue"]
    if interval is None or beat_queue is None:
        return execute_cell_batched(cell)
    from repro.telemetry.heartbeat import HeartbeatEmitter, use_heartbeat

    def ship(beat) -> None:
        try:
            beat_queue.put_nowait((unit_index, beat))  # type: ignore[attr-defined]
        except Exception:
            pass

    with use_heartbeat(HeartbeatEmitter(int(interval), ship)):
        return execute_cell_batched(cell)


class ProcessBackend(ExecutionBackend):
    """Shard cells — and, with ``shard_size``, seed lists — across a pool.

    Parameters
    ----------
    workers:
        Pool size; defaults to the machine's CPU count.  The pool never
        exceeds the number of work units (shards plus unsplit cells), so no
        idle processes are spawned.
    mp_context:
        ``multiprocessing`` start method.  Defaults to ``"spawn"``, which
        works on every platform and proves the cells are pure-data; pass
        ``"fork"`` on POSIX to trade that guarantee for cheaper startup.
    shard_size:
        Maximum seeds per work unit.  ``None`` (default) keeps whole cells;
        ``"auto"`` resolves to ``ceil(R / workers)`` per cell, splitting
        every cell into exactly as many shards as there are workers — the
        fix for the one-cell/one-core defect: a single montecarlo cell with
        thousands of replicas saturates the pool instead of pinning one
        core.

    Each worker executes the batched cell path, so per-cell results are the
    batched engine's — replica-for-replica identical to the sequential
    loop.  ``imap`` keeps delivery (and therefore record order, shard-merge
    order and progress events) in deterministic unit order regardless of
    which worker finishes first.  ``last_pool_size`` records the pool size
    of the most recent run (what the clamp regression test reads).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        mp_context: str = "spawn",
        shard_size: ShardSize = None,
        heartbeat_interval: Optional[int] = None,
        kernel: Optional[str] = None,
    ):
        if workers is None:
            workers = max(1, os.cpu_count() or 1)
        if int(workers) < 1:
            raise ConfigurationError(f"workers must be >= 1; got {workers}")
        self.workers = int(workers)
        self.mp_context = mp_context
        self.shard_size = _validate_shard_size(shard_size)
        self.heartbeat_interval = _validate_heartbeat_interval(heartbeat_interval)
        # Cells are stamped with this default before they ship to the
        # pool, so each spawn worker resolves (and JIT-compiles) its
        # kernel once per process — numba's cache=True makes the second
        # and later workers load the on-disk artifact instead.
        self.kernel = _validate_kernel(kernel)
        self.name = f"process:{self.workers}"
        self.last_pool_size: Optional[int] = None

    def run_cell_outcomes(
        self,
        cells: Sequence[ExecutionCell],
        progress: Optional[ProgressHook] = None,
    ) -> Tuple[CellOutcome, ...]:
        cells = tuple(cells)
        if not cells:
            return ()
        # Flatten cells into work units: (cell index, shard index, shard
        # count, sub-cell), in cell order then shard order.  Whole small
        # cells and the shards of large ones interleave in one list, so the
        # pool drains them without idling on a long tail.
        units: List[Tuple[int, int, int, ExecutionCell]] = []
        stamped = tuple(_stamp_kernel(cell, self.kernel) for cell in cells)
        for cell_index, cell in enumerate(stamped):
            size = resolve_shard_size(
                self.shard_size, cell.num_replicas, self.workers
            )
            shards = split_cell(cell, size)
            for shard_index, shard in enumerate(shards):
                units.append((cell_index, shard_index, len(shards), shard))
        pool_size = min(self.workers, len(units))
        self.last_pool_size = pool_size
        context = multiprocessing.get_context(self.mp_context)

        # In-flight heartbeats: workers ship (unit_index, Heartbeat) pairs
        # over one shared queue; a parent drain thread maps the unit index
        # back to (cell, shard) and forwards ShardProgress events.  The
        # emit lock keeps heartbeat delivery from interleaving with the
        # ordered CellCompleted emissions of the main result loop.
        heartbeating = self.heartbeat_interval is not None and progress is not None
        beat_queue = context.Queue() if heartbeating else None
        emit_lock = threading.Lock()
        stop_drain = threading.Event()
        drain_thread: Optional[threading.Thread] = None
        if heartbeating:

            def _drain() -> None:
                while True:
                    try:
                        unit_index, beat = beat_queue.get(timeout=0.05)
                    except queue_module.Empty:
                        if stop_drain.is_set():
                            return
                        continue
                    except (EOFError, OSError):  # queue torn down under us
                        return
                    cell_index, shard_index, shard_count, shard = units[unit_index]
                    event = ShardProgress(
                        index=cell_index,
                        total=len(cells),
                        backend=self.name,
                        cell=shard,
                        heartbeat=beat,
                        shard_index=shard_index if shard_count > 1 else None,
                        shard_count=shard_count if shard_count > 1 else None,
                    )
                    with emit_lock:
                        try:
                            progress(event)
                        except Exception:
                            # A raising hook must not kill in-flight
                            # delivery; completed-event errors still
                            # propagate through the main loop below.
                            pass

            drain_thread = threading.Thread(
                target=_drain, name="repro-heartbeat-drain", daemon=True
            )
            drain_thread.start()

        outcomes = []
        pending: Dict[int, List[CellOutcome]] = {}
        try:
            with context.Pool(
                processes=pool_size,
                initializer=_init_worker_heartbeat if heartbeating else None,
                initargs=(
                    (self.heartbeat_interval, beat_queue) if heartbeating else ()
                ),
            ) as pool:
                results = (
                    pool.imap(
                        _execute_unit_in_worker,
                        [
                            (unit_index, unit[3])
                            for unit_index, unit in enumerate(units)
                        ],
                        chunksize=1,
                    )
                    if heartbeating
                    else pool.imap(
                        _execute_cell_in_worker,
                        [unit[3] for unit in units],
                        chunksize=1,
                    )
                )
                for (cell_index, shard_index, shard_count, _), shard_outcome in zip(
                    units, results
                ):
                    if shard_count > 1:
                        with emit_lock:
                            emit_progress(
                                progress,
                                cell_index,
                                len(cells),
                                shard_outcome,
                                self.name,
                                shard_index=shard_index,
                                shard_count=shard_count,
                            )
                    pending.setdefault(cell_index, []).append(shard_outcome)
                    if shard_index == shard_count - 1:
                        # imap delivers in unit order, so a cell's shards
                        # arrive consecutively; its last shard completes
                        # the cell.
                        outcome = merge_cell_outcomes(
                            stamped[cell_index], pending.pop(cell_index)
                        )
                        outcomes.append(outcome)
                        with emit_lock:
                            emit_progress(
                                progress, cell_index, len(cells), outcome, self.name
                            )
        finally:
            if beat_queue is not None:
                # Workers are done; anything still queued is drained (the
                # loop only exits on Empty after the stop flag), then the
                # queue's feeder thread is released.
                stop_drain.set()
                if drain_thread is not None:
                    drain_thread.join(timeout=5.0)
                beat_queue.close()
                beat_queue.cancel_join_thread()
        return tuple(outcomes)


def resolve_backend(
    spec: BackendSpec = None,
    default: BackendSpec = "sequential",
    shard_size: ShardSize = None,
    heartbeat_interval: Optional[int] = None,
    kernel: Optional[str] = None,
) -> ExecutionBackend:
    """Turn a backend instance or spec string into a backend object.

    Accepted spec strings: ``"sequential"``, ``"batched"``, ``"process"``
    (CPU-count workers), ``"process:N"`` and ``"service:URL"`` (execute on
    a remote sweep-service daemon, see :mod:`repro.service`).  ``None``
    resolves to ``default``, so entry points can keep their historical
    default while accepting explicit overrides.  ``shard_size`` (an int,
    ``"auto"`` or ``None`` to leave the backend's own setting alone) is
    applied to the resolved backend — including instances passed in
    directly, so CLI ``--shard-size`` composes with any ``--backend``.
    ``heartbeat_interval`` (a positive round count, or ``None`` to leave
    the backend's own setting alone) composes the same way and turns on
    in-flight :class:`~repro.exec.base.ShardProgress` events.  ``kernel``
    (a :mod:`repro.batch.kernels` spec, or ``None`` to leave the
    backend's own setting alone) sets the backend's default round kernel,
    stamped onto cells that do not choose their own — what CLI
    ``--kernel`` resolves through.
    """
    if spec is None:
        spec = default
    resolved: Optional[ExecutionBackend] = None
    if isinstance(spec, ExecutionBackend):
        resolved = spec
    elif isinstance(spec, str):
        name, _, argument = spec.strip().partition(":")
        name = name.lower()
        if name == "sequential" and not argument:
            resolved = SequentialBackend()
        elif name == "batched" and not argument:
            resolved = BatchedBackend()
        elif name == "process":
            if not argument:
                resolved = ProcessBackend()
            else:
                try:
                    workers = int(argument)
                except ValueError:
                    raise ConfigurationError(
                        f"invalid worker count {argument!r} in backend spec "
                        f"{spec!r}"
                    ) from None
                resolved = ProcessBackend(workers=workers)
        elif name == "service":
            if not argument.strip():
                raise ConfigurationError(
                    f"backend spec {spec!r} is missing the daemon URL; "
                    f"expected 'service:URL', e.g. "
                    f"'service:http://127.0.0.1:8123'"
                )
            # Imported lazily: the client pulls in urllib/wire machinery
            # that local-only sweeps never need.
            from repro.service.client import ServiceBackend

            resolved = ServiceBackend(argument)
    if resolved is None:
        raise ConfigurationError(
            f"unknown execution backend {spec!r}; expected an ExecutionBackend "
            f"instance or one of 'sequential', 'batched', 'process[:N]', "
            f"'service:URL'"
        )
    if shard_size is not None:
        resolved.shard_size = _validate_shard_size(shard_size)
    if heartbeat_interval is not None:
        resolved.heartbeat_interval = _validate_heartbeat_interval(
            heartbeat_interval
        )
    if kernel is not None:
        resolved.kernel = _validate_kernel(kernel)
    return resolved


def resolve_backend_with_deprecated_batched(
    backend: BackendSpec,
    batched: Optional[bool],
    default: BackendSpec = "sequential",
    what: str = "batched=",
    shard_size: ShardSize = None,
    heartbeat_interval: Optional[int] = None,
    kernel: Optional[str] = None,
) -> ExecutionBackend:
    """Resolve ``backend=`` while honouring the legacy ``batched=`` kwarg.

    ``batched=True`` maps to :class:`BatchedBackend` and ``batched=False``
    to :class:`SequentialBackend`, each with a :class:`DeprecationWarning`;
    passing both ``backend=`` and ``batched=`` is an error.
    """
    if batched is not None:
        warnings.warn(
            f"{what} is deprecated; pass backend='batched' (or any backend "
            f"spec / instance) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        if backend is not None:
            raise ConfigurationError(
                "pass either backend= or the deprecated batched=, not both"
            )
        backend = "batched" if batched else "sequential"
    return resolve_backend(
        backend,
        default=default,
        shard_size=shard_size,
        heartbeat_interval=heartbeat_interval,
        kernel=kernel,
    )
