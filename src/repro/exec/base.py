"""The :class:`ExecutionBackend` API: one contract for every sweep executor.

A backend receives a sequence of :class:`~repro.exec.cells.ExecutionCell`
objects and returns their outcomes **in cell order**, whatever execution
strategy it uses internally (a loop, one batched state array per cell, a
process pool over cells).  Because every executor is replica-for-replica
identical to the sequential loop under matched seeds, swapping backends
never changes experiment output — only wall-clock.

Progress reporting is backend-mediated: callers pass a ``progress`` callable
that receives one :class:`CellCompleted` event per finished cell, again in
deterministic cell order, carrying only that cell's outcome (so progress
aggregation stays O(cell), not O(records so far)).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Tuple, Union

from repro.exec.cells import CellOutcome, ExecutionCell

if TYPE_CHECKING:  # pragma: no cover - typing-only, avoids a module cycle
    from repro.experiments.results import TrialRecord
    from repro.telemetry.heartbeat import Heartbeat


@dataclass(frozen=True)
class CellCompleted:
    """Progress event emitted after each cell finishes.

    Events arrive in deterministic cell order (index ``0`` first) on every
    backend, including process pools — ordered delivery is part of the
    backend contract, so progress output is reproducible too.

    ``wall_seconds`` and ``rounds_advanced`` mirror the outcome's telemetry
    (seconds the executing process spent on the cell, total replica-rounds
    advanced); both are excluded from equality, like the outcome fields they
    come from.

    When a backend shards a cell's seed list (``shard_size``), it emits one
    *sub-progress* event per finished shard — ``shard_index`` / ``shard_count``
    set, ``outcome`` carrying only that shard's sub-cell — followed by the
    ordinary per-cell event (shard fields ``None``, outcome merged over the
    whole cell).  Consumers that ignore the shard fields see exactly the
    historical event stream.
    """

    index: int
    total: int
    outcome: CellOutcome
    backend: str
    wall_seconds: Optional[float] = field(default=None, compare=False)
    rounds_advanced: Optional[int] = field(default=None, compare=False)
    shard_index: Optional[int] = None
    shard_count: Optional[int] = None

    @property
    def cell(self) -> ExecutionCell:
        """The cell this event reports on."""
        return self.outcome.cell


@dataclass(frozen=True)
class ShardProgress:
    """In-flight progress event: one engine heartbeat from inside a shard.

    Emitted by backends with a ``heartbeat_interval`` set, *while* the cell
    (or shard) named by ``index``/``shard_index`` is still executing.  The
    payload is the raw :class:`~repro.telemetry.heartbeat.Heartbeat`
    sampled every K rounds inside the engine loop.

    Unlike :class:`CellCompleted`, these events carry **no ordering or
    delivery guarantee**: they are racy in-flight observability (a beat
    from a process worker can arrive after the cell's completion event),
    they never appear in results, and records stay byte-identical whether
    any are emitted or not.  Consumers must treat them as hints.
    """

    index: int
    total: int
    backend: str
    cell: ExecutionCell
    heartbeat: "Heartbeat"
    shard_index: Optional[int] = None
    shard_count: Optional[int] = None
    attempt: int = 0


#: Either progress event a backend may deliver to the hook.
ProgressEvent = Union[CellCompleted, ShardProgress]

#: Signature of the backend-mediated progress hook.  Hooks predating
#: heartbeats keep working: backends only emit :class:`ShardProgress`
#: when a ``heartbeat_interval`` is configured.
ProgressHook = Callable[[ProgressEvent], None]


class ExecutionBackend(abc.ABC):
    """Strategy for executing a sequence of sweep cells.

    Implementations must return outcomes in cell order and preserve the
    per-replica results of the sequential loop under matched seeds.
    """

    #: Spec-string name of the backend (what :func:`resolve_backend` parses).
    name: str = "?"

    #: Seed-list shard size: ``None`` (whole cells), a positive int, or
    #: ``"auto"`` (``ceil(R / workers)`` per cell).  Backends that shard
    #: split cells with :func:`~repro.exec.cells.split_cell` and merge the
    #: executed shards back byte-identically; ``resolve_backend`` sets this
    #: attribute when given a ``shard_size``.
    shard_size: object = None

    #: In-flight heartbeat interval in engine rounds: ``None`` (off — the
    #: no-op fast path) or a positive int K.  When set, the backend
    #: installs a :class:`~repro.telemetry.heartbeat.HeartbeatEmitter`
    #: around each shard execution and forwards beats to the progress hook
    #: as :class:`ShardProgress` events; ``resolve_backend`` sets this
    #: attribute when given a ``heartbeat_interval``.
    heartbeat_interval: Optional[int] = None

    #: Default round kernel (:mod:`repro.batch.kernels` spec) stamped
    #: onto cells that do not choose their own: ``None`` (cells keep
    #: their engine's ``"auto"``), ``"numba"``, ``"numpy"``, ``"python"``
    #: or ``"xp:<namespace>"``.  Records are kernel-invariant, so this
    #: only changes how fast they arrive; ``resolve_backend`` sets this
    #: attribute when given a ``kernel``.
    kernel: Optional[str] = None

    @abc.abstractmethod
    def run_cell_outcomes(
        self,
        cells: Sequence[ExecutionCell],
        progress: Optional[ProgressHook] = None,
    ) -> Tuple[CellOutcome, ...]:
        """Execute every cell and return their outcomes in cell order."""

    def run_cells(
        self,
        cells: Sequence[ExecutionCell],
        progress: Optional[ProgressHook] = None,
    ) -> Tuple[TrialRecord, ...]:
        """Execute every cell and return the flattened per-trial records.

        Records are ordered by cell, then by seed within the cell — the
        exact order the per-trial sweep loop produces, byte-identical to it
        under matched seeds on every backend.
        """
        outcomes = self.run_cell_outcomes(cells, progress=progress)
        return tuple(
            record for outcome in outcomes for record in outcome.to_records()
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


def emit_progress(
    progress: Optional[ProgressHook],
    index: int,
    total: int,
    outcome: CellOutcome,
    backend: str,
    shard_index: Optional[int] = None,
    shard_count: Optional[int] = None,
) -> None:
    """Deliver one :class:`CellCompleted` event if a hook is installed.

    ``shard_index`` / ``shard_count`` mark the event as per-shard
    sub-progress (sharding backends emit those before the per-cell event).
    """
    if progress is not None:
        progress(
            CellCompleted(
                index=index,
                total=total,
                outcome=outcome,
                backend=backend,
                wall_seconds=outcome.wall_seconds,
                rounds_advanced=outcome.rounds_advanced,
                shard_index=shard_index,
                shard_count=shard_count,
            )
        )
