"""Figure-shaped experiments: scaling laws, the lower-bound conjecture, ablations.

The paper has no measured figures (it is a theory paper), so the "figures"
regenerated here are the empirical counterparts of its claims:

* **E2 — Theorem 2**: convergence time of uniform BFW against the diameter,
  expected to follow ``Θ(D² log n)`` (on paths and cycles, where ``n`` and
  ``D`` are proportional, the dominant behaviour is the ``D²`` factor).
* **E3 — Theorem 3**: the same sweep with ``p = 1/(D+1)``, expected to
  follow ``Θ(D log n)``, and the speed-up factor over the uniform protocol.
* **E4 — Section 5 conjecture**: two leaders planted at the ends of a path of
  length ``D`` eliminate one another after ``Θ(D²)`` rounds, because the
  boundary between their wave systems performs an approximate random walk.
* **E8 — ablations**: convergence time as a function of ``p``, and the
  failure modes of the protocol variants with an ingredient removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.batch.engine import BatchedEngine
from repro.beeping.adversary import (
    planted_leaders_initial_states,
)
from repro.beeping.engine import VectorizedEngine
from repro.core.bfw import BFWProtocol, NonUniformBFWProtocol
from repro.core.variants import NoFreezeBFWProtocol, NoRelayBFWProtocol
from repro.errors import ConfigurationError
from repro.experiments.seeds import rng_from, trial_seeds
from repro.graphs.generators import cycle_graph, path_graph
from repro.graphs.topology import Topology
from repro.stats.regression import ModelComparison, PowerLawFit, compare_scaling_models, fit_power_law
from repro.stats.summary import Summary, summarize_sample
from repro.viz.table_format import render_table


# --------------------------------------------------------------------------- #
# E2 / E3 — convergence-time scaling (Theorems 2 and 3)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ScalingPoint:
    """Aggregated convergence times for one diameter value."""

    diameter: int
    n: int
    rounds: Summary
    convergence_rate: float


@dataclass(frozen=True)
class ScalingResult:
    """Outcome of a scaling sweep (experiments E2 and E3)."""

    mode: str
    family: str
    points: Tuple[ScalingPoint, ...]
    power_law: PowerLawFit
    model_comparison: ModelComparison

    def render(self) -> str:
        """Plain-text table plus the fitted scaling exponent."""
        rows = [
            (
                point.diameter,
                point.n,
                point.rounds.mean,
                point.rounds.median,
                point.rounds.q95,
                point.convergence_rate,
            )
            for point in self.points
        ]
        table = render_table(
            ["D", "n", "mean rounds", "median", "q95", "conv. rate"],
            rows,
            title=(
                f"Convergence-time scaling — {self.mode} BFW on {self.family} graphs"
            ),
        )
        fit_line = (
            f"\nfitted T ~ D^{self.power_law.exponent:.2f} "
            f"(r^2 = {self.power_law.r_squared:.3f}); "
            f"best model: {self.model_comparison.best_model}"
        )
        return table + fit_line


def _graph_for(family: str, diameter: int) -> Topology:
    if family == "path":
        return path_graph(diameter + 1)
    if family == "cycle":
        return cycle_graph(2 * diameter)
    raise ConfigurationError(
        f"scaling experiments support 'path' and 'cycle'; got {family!r}"
    )


def _run_cell_results(
    topology: Topology,
    protocol,
    seeds: Sequence[int],
    budget: int,
    batched: bool,
    initial_states=None,
):
    """One (protocol, budget) cell's per-seed results, batched or looped.

    The batched path reproduces each seeded run exactly, so callers may
    aggregate either tuple without caring which engine produced it.
    """
    if batched:
        batch = BatchedEngine(topology, protocol).run(
            list(seeds),
            max_rounds=budget,
            initial_states=(
                None if initial_states is None else np.asarray(initial_states)
            ),
            record_leader_counts=False,
        )
        return batch.to_simulation_results()
    engine = VectorizedEngine(topology, protocol)
    return tuple(
        engine.run(max_rounds=budget, rng=seed, initial_states=initial_states)
        for seed in seeds
    )


def scaling_experiment(
    mode: str = "uniform",
    family: str = "path",
    diameters: Sequence[int] = (8, 16, 32, 64),
    num_seeds: int = 10,
    master_seed: int = 2,
    beep_probability: float = 0.5,
    max_rounds_factor: float = 200.0,
    batched: bool = False,
) -> ScalingResult:
    """Measure convergence time against the diameter (experiments E2 / E3).

    Parameters
    ----------
    mode:
        ``"uniform"`` for Theorem 2 (constant ``p``) or ``"nonuniform"`` for
        Theorem 3 (``p = 1/(D+1)``).
    family:
        ``"path"`` or ``"cycle"`` — the worst-case-diameter families.
    diameters:
        Diameter values to sweep.
    num_seeds:
        Trials per diameter.
    master_seed:
        Master seed for reproducibility.
    beep_probability:
        The constant ``p`` used in uniform mode.
    max_rounds_factor:
        Per-trial round budget as a multiple of ``D² log₂ n`` (uniform) or
        ``D log₂ n`` (non-uniform).
    batched:
        Advance all seeds of a diameter in one
        :class:`~repro.batch.engine.BatchedEngine` state array instead of
        looping single runs.  The per-seed results (and therefore the fitted
        exponents) are bit-for-bit identical; only the wall-clock changes.
    """
    if mode not in ("uniform", "nonuniform"):
        raise ConfigurationError(f"mode must be 'uniform' or 'nonuniform'; got {mode!r}")
    points: List[ScalingPoint] = []
    mean_rounds: List[float] = []
    for diameter in diameters:
        topology = _graph_for(family, diameter)
        if mode == "uniform":
            protocol = BFWProtocol(beep_probability=beep_probability)
            budget = int(
                max_rounds_factor * diameter * diameter * (np.log2(topology.n) + 1)
            )
        else:
            protocol = NonUniformBFWProtocol(diameter=diameter)
            budget = int(max_rounds_factor * diameter * (np.log2(topology.n) + 1)) + 1000
        seeds = trial_seeds(master_seed, f"scaling/{mode}/{family}/{diameter}", num_seeds)
        results = _run_cell_results(topology, protocol, seeds, budget, batched)
        rounds: List[float] = []
        converged = 0
        for result in results:
            if result.converged and result.convergence_round is not None:
                rounds.append(float(result.convergence_round))
                converged += 1
            else:
                rounds.append(float(result.rounds_executed))
        summary = summarize_sample(rounds)
        points.append(
            ScalingPoint(
                diameter=diameter,
                n=topology.n,
                rounds=summary,
                convergence_rate=converged / num_seeds,
            )
        )
        mean_rounds.append(summary.mean)

    power_law = fit_power_law([point.diameter for point in points], mean_rounds)
    model_comparison = compare_scaling_models(
        [point.diameter for point in points],
        [point.n for point in points],
        mean_rounds,
    )
    return ScalingResult(
        mode=mode,
        family=family,
        points=tuple(points),
        power_law=power_law,
        model_comparison=model_comparison,
    )


@dataclass(frozen=True)
class CrossoverResult:
    """Uniform vs non-uniform BFW on the same graphs (the Theorem 2/3 gap)."""

    uniform: ScalingResult
    nonuniform: ScalingResult
    speedups: Tuple[Tuple[int, float], ...]

    def render(self) -> str:
        """Table of mean-round speed-up factors per diameter."""
        rows = [(diameter, speedup) for diameter, speedup in self.speedups]
        return render_table(
            ["D", "uniform / non-uniform (mean rounds)"],
            rows,
            title="Speed-up of p = 1/(D+1) over constant p (Theorem 3 vs Theorem 2)",
        )


def crossover_experiment(
    family: str = "path",
    diameters: Sequence[int] = (8, 16, 32),
    num_seeds: int = 10,
    master_seed: int = 3,
) -> CrossoverResult:
    """Run E2 and E3 on the same graphs and report the speed-up factors."""
    uniform = scaling_experiment(
        mode="uniform",
        family=family,
        diameters=diameters,
        num_seeds=num_seeds,
        master_seed=master_seed,
    )
    nonuniform = scaling_experiment(
        mode="nonuniform",
        family=family,
        diameters=diameters,
        num_seeds=num_seeds,
        master_seed=master_seed + 1,
    )
    speedups = tuple(
        (
            uniform_point.diameter,
            uniform_point.rounds.mean / max(nonuniform_point.rounds.mean, 1.0),
        )
        for uniform_point, nonuniform_point in zip(uniform.points, nonuniform.points)
    )
    return CrossoverResult(uniform=uniform, nonuniform=nonuniform, speedups=speedups)


# --------------------------------------------------------------------------- #
# E4 — the Section 5 lower-bound conjecture
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class LowerBoundPoint:
    """Elimination times for two diametral leaders on a path of length D."""

    diameter: int
    rounds: Summary
    normalised_by_d2: float


@dataclass(frozen=True)
class LowerBoundResult:
    """Outcome of the lower-bound experiment (E4)."""

    points: Tuple[LowerBoundPoint, ...]
    power_law: PowerLawFit

    def render(self) -> str:
        """Plain-text table plus the fitted exponent (conjectured: 2)."""
        rows = [
            (
                point.diameter,
                point.rounds.mean,
                point.rounds.median,
                point.normalised_by_d2,
            )
            for point in self.points
        ]
        table = render_table(
            ["D", "mean rounds", "median", "mean / D^2"],
            rows,
            title="Two diametral leaders on a path (Section 5 conjecture)",
        )
        return (
            table
            + f"\nfitted elimination time ~ D^{self.power_law.exponent:.2f} "
            f"(conjectured exponent: 2)"
        )


def lower_bound_experiment(
    diameters: Sequence[int] = (8, 16, 32, 64),
    num_seeds: int = 20,
    master_seed: int = 4,
    beep_probability: float = 0.5,
    max_rounds_factor: float = 400.0,
    batched: bool = False,
) -> LowerBoundResult:
    """Measure how long two diametral leaders coexist on a path (experiment E4).

    With ``batched=True`` all seeds of a diameter advance in one
    :class:`~repro.batch.engine.BatchedEngine` state array (planted initial
    states included); the per-seed results are bit-for-bit identical to the
    loop, so the fitted exponent never changes — only the wall-clock does.
    """
    points: List[LowerBoundPoint] = []
    means: List[float] = []
    for diameter in diameters:
        topology = path_graph(diameter + 1)
        protocol = BFWProtocol(beep_probability=beep_probability)
        initial = planted_leaders_initial_states(topology, (0, topology.n - 1))
        budget = int(max_rounds_factor * diameter * diameter) + 1000
        seeds = trial_seeds(master_seed, f"lower-bound/{diameter}", num_seeds)
        results = _run_cell_results(
            topology, protocol, seeds, budget, batched, initial_states=initial
        )
        rounds: List[float] = []
        for result in results:
            rounds.append(
                float(
                    result.convergence_round
                    if result.convergence_round is not None
                    else result.rounds_executed
                )
            )
        summary = summarize_sample(rounds)
        points.append(
            LowerBoundPoint(
                diameter=diameter,
                rounds=summary,
                normalised_by_d2=summary.mean / float(diameter * diameter),
            )
        )
        means.append(summary.mean)
    power_law = fit_power_law([point.diameter for point in points], means)
    return LowerBoundResult(points=tuple(points), power_law=power_law)


# --------------------------------------------------------------------------- #
# E8 — parameter sweep and structural ablations
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ParameterSweepPoint:
    """Convergence summary for one value of ``p``."""

    beep_probability: float
    rounds: Summary
    convergence_rate: float


@dataclass(frozen=True)
class AblationOutcome:
    """What happens when a protocol ingredient is removed."""

    variant: str
    convergence_rate: float
    leaderless_rate: float
    mean_rounds: float


@dataclass(frozen=True)
class AblationResult:
    """Outcome of the parameter sweep and the structural ablations (E8)."""

    sweep_points: Tuple[ParameterSweepPoint, ...]
    ablations: Tuple[AblationOutcome, ...]
    graph_label: str

    def render(self) -> str:
        """Plain-text rendering of both parts of the experiment."""
        sweep_rows = [
            (point.beep_probability, point.rounds.mean, point.convergence_rate)
            for point in self.sweep_points
        ]
        sweep_table = render_table(
            ["p", "mean rounds", "conv. rate"],
            sweep_rows,
            title=f"Convergence vs beep probability on {self.graph_label}",
        )
        ablation_rows = [
            (
                outcome.variant,
                outcome.convergence_rate,
                outcome.leaderless_rate,
                outcome.mean_rounds,
            )
            for outcome in self.ablations
        ]
        ablation_table = render_table(
            ["variant", "conv. rate", "leaderless rate", "mean rounds"],
            ablation_rows,
            title="Structural ablations",
        )
        return sweep_table + "\n\n" + ablation_table


def ablation_experiment(
    diameter: int = 24,
    probabilities: Sequence[float] = (0.05, 0.1, 0.25, 0.5, 0.75, 0.9),
    num_seeds: int = 10,
    master_seed: int = 5,
    max_rounds_factor: float = 150.0,
    batched: bool = False,
) -> AblationResult:
    """Sweep ``p`` and test the structural ablation variants (experiment E8).

    With ``batched=True`` every cell of the sweep (one value of ``p``, or one
    ablated variant) advances all its seeds in one batched state array; the
    reported rates and round counts are identical to the per-seed loop.
    """
    topology = path_graph(diameter + 1)
    budget = int(max_rounds_factor * diameter * diameter) + 1000

    sweep_points: List[ParameterSweepPoint] = []
    for probability in probabilities:
        seeds = trial_seeds(master_seed, f"ablation/p={probability}", num_seeds)
        results = _run_cell_results(
            topology,
            BFWProtocol(beep_probability=probability),
            seeds,
            budget,
            batched,
        )
        rounds: List[float] = []
        converged = 0
        for result in results:
            if result.converged:
                converged += 1
                rounds.append(float(result.convergence_round))
            else:
                rounds.append(float(result.rounds_executed))
        sweep_points.append(
            ParameterSweepPoint(
                beep_probability=probability,
                rounds=summarize_sample(rounds),
                convergence_rate=converged / num_seeds,
            )
        )

    ablation_protocols = (
        ("bfw (full)", BFWProtocol()),
        ("no-freeze", NoFreezeBFWProtocol()),
        ("no-relay", NoRelayBFWProtocol()),
    )
    ablations: List[AblationOutcome] = []
    # The ablated variants may fail to converge; keep their budget small so
    # the experiment terminates quickly while still being conclusive.
    ablation_budget = min(budget, 40 * diameter * diameter)
    for label, protocol in ablation_protocols:
        seeds = trial_seeds(master_seed, f"ablation/{label}", num_seeds)
        results = _run_cell_results(
            topology, protocol, seeds, ablation_budget, batched
        )
        converged = 0
        leaderless = 0
        rounds: List[float] = []
        for result in results:
            if result.converged:
                converged += 1
                rounds.append(float(result.convergence_round))
            else:
                rounds.append(float(result.rounds_executed))
            if result.final_leader_count == 0:
                leaderless += 1
        ablations.append(
            AblationOutcome(
                variant=label,
                convergence_rate=converged / num_seeds,
                leaderless_rate=leaderless / num_seeds,
                mean_rounds=float(np.mean(rounds)),
            )
        )
    return AblationResult(
        sweep_points=tuple(sweep_points),
        ablations=tuple(ablations),
        graph_label=topology.name,
    )
