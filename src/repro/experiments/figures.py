"""Figure-shaped experiments: scaling laws, the lower-bound conjecture, ablations.

The paper has no measured figures (it is a theory paper), so the "figures"
regenerated here are the empirical counterparts of its claims:

* **E2 — Theorem 2**: convergence time of uniform BFW against the diameter,
  expected to follow ``Θ(D² log n)`` (on paths and cycles, where ``n`` and
  ``D`` are proportional, the dominant behaviour is the ``D²`` factor).
* **E3 — Theorem 3**: the same sweep with ``p = 1/(D+1)``, expected to
  follow ``Θ(D log n)``, and the speed-up factor over the uniform protocol.
* **E4 — Section 5 conjecture**: two leaders planted at the ends of a path of
  length ``D`` eliminate one another after ``Θ(D²)`` rounds, because the
  boundary between their wave systems performs an approximate random walk.
* **E8 — ablations**: convergence time as a function of ``p``, and the
  failure modes of the protocol variants with an ingredient removed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.exec import (
    BackendSpec,
    ExecutionCell,
    ShardSize,
    resolve_backend_with_deprecated_batched,
)
from repro.experiments.config import GraphSpec, ProtocolSpecConfig
from repro.experiments.seeds import trial_seeds
from repro.stats.regression import ModelComparison, PowerLawFit, compare_scaling_models, fit_power_law
from repro.stats.summary import Summary, summarize_sample
from repro.viz.table_format import render_table


# --------------------------------------------------------------------------- #
# E2 / E3 — convergence-time scaling (Theorems 2 and 3)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ScalingPoint:
    """Aggregated convergence times for one diameter value."""

    diameter: int
    n: int
    rounds: Summary
    convergence_rate: float


@dataclass(frozen=True)
class ScalingResult:
    """Outcome of a scaling sweep (experiments E2 and E3)."""

    mode: str
    family: str
    points: Tuple[ScalingPoint, ...]
    power_law: PowerLawFit
    model_comparison: ModelComparison

    def render(self) -> str:
        """Plain-text table plus the fitted scaling exponent."""
        rows = [
            (
                point.diameter,
                point.n,
                point.rounds.mean,
                point.rounds.median,
                point.rounds.q95,
                point.convergence_rate,
            )
            for point in self.points
        ]
        table = render_table(
            ["D", "n", "mean rounds", "median", "q95", "conv. rate"],
            rows,
            title=(
                f"Convergence-time scaling — {self.mode} BFW on {self.family} graphs"
            ),
        )
        fit_line = (
            f"\nfitted T ~ D^{self.power_law.exponent:.2f} "
            f"(r^2 = {self.power_law.r_squared:.3f}); "
            f"best model: {self.model_comparison.best_model}"
        )
        return table + fit_line


def _graph_spec_for(family: str, diameter: int) -> GraphSpec:
    """The worst-case-diameter graph of one scaling cell, as pure data.

    ``make_graph`` rebuilds exactly the graphs the historical code built
    directly (``path_graph(D + 1)``, ``cycle_graph(2 D)``), so cells remain
    spawn-safe spec pairs.
    """
    if family == "path":
        return GraphSpec(family="path", n=diameter + 1)
    if family == "cycle":
        return GraphSpec(family="cycle", n=2 * diameter)
    raise ConfigurationError(
        f"scaling experiments support 'path' and 'cycle'; got {family!r}"
    )


def scaling_experiment(
    mode: str = "uniform",
    family: str = "path",
    diameters: Sequence[int] = (8, 16, 32, 64),
    num_seeds: int = 10,
    master_seed: int = 2,
    beep_probability: float = 0.5,
    max_rounds_factor: float = 200.0,
    batched: Optional[bool] = None,
    backend: BackendSpec = None,
    shard_size: "ShardSize" = None,
    heartbeat_interval: Optional[int] = None,
    kernel: Optional[str] = None,
) -> ScalingResult:
    """Measure convergence time against the diameter (experiments E2 / E3).

    Parameters
    ----------
    mode:
        ``"uniform"`` for Theorem 2 (constant ``p``) or ``"nonuniform"`` for
        Theorem 3 (``p = 1/(D+1)``).
    family:
        ``"path"`` or ``"cycle"`` — the worst-case-diameter families.
    diameters:
        Diameter values to sweep.
    num_seeds:
        Trials per diameter.
    master_seed:
        Master seed for reproducibility.
    beep_probability:
        The constant ``p`` used in uniform mode.
    max_rounds_factor:
        Per-trial round budget as a multiple of ``D² log₂ n`` (uniform) or
        ``D log₂ n`` (non-uniform).
    backend:
        :mod:`repro.exec` backend executing the per-diameter cells
        (``"sequential"`` by default; ``"batched"`` advances all seeds of a
        diameter in one state array, ``"process:N"`` shards diameters
        across worker processes).  The per-seed results — and therefore the
        fitted exponents — are bit-for-bit identical on every backend.
    batched:
        Deprecated shim for ``backend="batched"`` (emits a
        :class:`DeprecationWarning`).
    """
    if mode not in ("uniform", "nonuniform"):
        raise ConfigurationError(f"mode must be 'uniform' or 'nonuniform'; got {mode!r}")
    resolved = resolve_backend_with_deprecated_batched(
        backend,
        batched,
        default="sequential",
        what="scaling_experiment(batched=...)",
        shard_size=shard_size,
        heartbeat_interval=heartbeat_interval,
        kernel=kernel,
    )
    cells: List[ExecutionCell] = []
    for diameter in diameters:
        graph_spec = _graph_spec_for(family, diameter)
        if mode == "uniform":
            protocol_spec = ProtocolSpecConfig(
                name="bfw", params={"beep_probability": beep_probability}
            )
            budget = int(
                max_rounds_factor * diameter * diameter * (np.log2(graph_spec.n) + 1)
            )
        else:
            protocol_spec = ProtocolSpecConfig(name="bfw-nonuniform")
            budget = (
                int(max_rounds_factor * diameter * (np.log2(graph_spec.n) + 1)) + 1000
            )
        cells.append(
            ExecutionCell(
                protocol=protocol_spec,
                graph=graph_spec,
                seeds=trial_seeds(
                    master_seed, f"scaling/{mode}/{family}/{diameter}", num_seeds
                ),
                max_rounds=budget,
            )
        )
    outcomes = resolved.run_cell_outcomes(tuple(cells))

    points: List[ScalingPoint] = []
    mean_rounds: List[float] = []
    for diameter, outcome in zip(diameters, outcomes):
        rounds: List[float] = []
        converged = 0
        for result in outcome.results:
            if result.converged and result.convergence_round is not None:
                rounds.append(float(result.convergence_round))
                converged += 1
            else:
                rounds.append(float(result.rounds_executed))
        summary = summarize_sample(rounds)
        points.append(
            ScalingPoint(
                diameter=diameter,
                n=outcome.n,
                rounds=summary,
                convergence_rate=converged / num_seeds,
            )
        )
        mean_rounds.append(summary.mean)

    power_law = fit_power_law([point.diameter for point in points], mean_rounds)
    model_comparison = compare_scaling_models(
        [point.diameter for point in points],
        [point.n for point in points],
        mean_rounds,
    )
    return ScalingResult(
        mode=mode,
        family=family,
        points=tuple(points),
        power_law=power_law,
        model_comparison=model_comparison,
    )


@dataclass(frozen=True)
class CrossoverResult:
    """Uniform vs non-uniform BFW on the same graphs (the Theorem 2/3 gap)."""

    uniform: ScalingResult
    nonuniform: ScalingResult
    speedups: Tuple[Tuple[int, float], ...]

    def render(self) -> str:
        """Table of mean-round speed-up factors per diameter."""
        rows = [(diameter, speedup) for diameter, speedup in self.speedups]
        return render_table(
            ["D", "uniform / non-uniform (mean rounds)"],
            rows,
            title="Speed-up of p = 1/(D+1) over constant p (Theorem 3 vs Theorem 2)",
        )


def crossover_experiment(
    family: str = "path",
    diameters: Sequence[int] = (8, 16, 32),
    num_seeds: int = 10,
    master_seed: int = 3,
    backend: BackendSpec = None,
    shard_size: "ShardSize" = None,
    heartbeat_interval: Optional[int] = None,
    kernel: Optional[str] = None,
) -> CrossoverResult:
    """Run E2 and E3 on the same graphs and report the speed-up factors."""
    uniform = scaling_experiment(
        mode="uniform",
        family=family,
        diameters=diameters,
        num_seeds=num_seeds,
        master_seed=master_seed,
        backend=backend,
        shard_size=shard_size,
        heartbeat_interval=heartbeat_interval,
        kernel=kernel,
    )
    nonuniform = scaling_experiment(
        mode="nonuniform",
        family=family,
        diameters=diameters,
        num_seeds=num_seeds,
        master_seed=master_seed + 1,
        backend=backend,
        shard_size=shard_size,
        heartbeat_interval=heartbeat_interval,
        kernel=kernel,
    )
    speedups = tuple(
        (
            uniform_point.diameter,
            uniform_point.rounds.mean / max(nonuniform_point.rounds.mean, 1.0),
        )
        for uniform_point, nonuniform_point in zip(uniform.points, nonuniform.points)
    )
    return CrossoverResult(uniform=uniform, nonuniform=nonuniform, speedups=speedups)


# --------------------------------------------------------------------------- #
# E4 — the Section 5 lower-bound conjecture
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class LowerBoundPoint:
    """Elimination times for two diametral leaders on a path of length D."""

    diameter: int
    rounds: Summary
    normalised_by_d2: float


@dataclass(frozen=True)
class LowerBoundResult:
    """Outcome of the lower-bound experiment (E4)."""

    points: Tuple[LowerBoundPoint, ...]
    power_law: PowerLawFit

    def render(self) -> str:
        """Plain-text table plus the fitted exponent (conjectured: 2)."""
        rows = [
            (
                point.diameter,
                point.rounds.mean,
                point.rounds.median,
                point.normalised_by_d2,
            )
            for point in self.points
        ]
        table = render_table(
            ["D", "mean rounds", "median", "mean / D^2"],
            rows,
            title="Two diametral leaders on a path (Section 5 conjecture)",
        )
        return (
            table
            + f"\nfitted elimination time ~ D^{self.power_law.exponent:.2f} "
            f"(conjectured exponent: 2)"
        )


def lower_bound_experiment(
    diameters: Sequence[int] = (8, 16, 32, 64),
    num_seeds: int = 20,
    master_seed: int = 4,
    beep_probability: float = 0.5,
    max_rounds_factor: float = 400.0,
    batched: Optional[bool] = None,
    backend: BackendSpec = None,
    shard_size: "ShardSize" = None,
    heartbeat_interval: Optional[int] = None,
    kernel: Optional[str] = None,
) -> LowerBoundResult:
    """Measure how long two diametral leaders coexist on a path (experiment E4).

    The per-diameter cells (planted diametral leaders included) run on any
    :mod:`repro.exec` backend with bit-for-bit identical per-seed results,
    so the fitted exponent never changes — only the wall-clock does.
    ``batched=True`` is a deprecated shim for ``backend="batched"``.
    """
    resolved = resolve_backend_with_deprecated_batched(
        backend,
        batched,
        default="sequential",
        what="lower_bound_experiment(batched=...)",
        shard_size=shard_size,
        heartbeat_interval=heartbeat_interval,
        kernel=kernel,
    )
    cells = tuple(
        ExecutionCell(
            protocol=ProtocolSpecConfig(
                name="bfw", params={"beep_probability": beep_probability}
            ),
            graph=GraphSpec(family="path", n=diameter + 1),
            seeds=trial_seeds(master_seed, f"lower-bound/{diameter}", num_seeds),
            max_rounds=int(max_rounds_factor * diameter * diameter) + 1000,
            planted_leaders=(0, -1),
        )
        for diameter in diameters
    )
    outcomes = resolved.run_cell_outcomes(cells)

    points: List[LowerBoundPoint] = []
    means: List[float] = []
    for diameter, outcome in zip(diameters, outcomes):
        rounds: List[float] = []
        for result in outcome.results:
            rounds.append(
                float(
                    result.convergence_round
                    if result.convergence_round is not None
                    else result.rounds_executed
                )
            )
        summary = summarize_sample(rounds)
        points.append(
            LowerBoundPoint(
                diameter=diameter,
                rounds=summary,
                normalised_by_d2=summary.mean / float(diameter * diameter),
            )
        )
        means.append(summary.mean)
    power_law = fit_power_law([point.diameter for point in points], means)
    return LowerBoundResult(points=tuple(points), power_law=power_law)


# --------------------------------------------------------------------------- #
# E8 — parameter sweep and structural ablations
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ParameterSweepPoint:
    """Convergence summary for one value of ``p``."""

    beep_probability: float
    rounds: Summary
    convergence_rate: float


@dataclass(frozen=True)
class AblationOutcome:
    """What happens when a protocol ingredient is removed."""

    variant: str
    convergence_rate: float
    leaderless_rate: float
    mean_rounds: float


@dataclass(frozen=True)
class AblationResult:
    """Outcome of the parameter sweep and the structural ablations (E8)."""

    sweep_points: Tuple[ParameterSweepPoint, ...]
    ablations: Tuple[AblationOutcome, ...]
    graph_label: str

    def render(self) -> str:
        """Plain-text rendering of both parts of the experiment."""
        sweep_rows = [
            (point.beep_probability, point.rounds.mean, point.convergence_rate)
            for point in self.sweep_points
        ]
        sweep_table = render_table(
            ["p", "mean rounds", "conv. rate"],
            sweep_rows,
            title=f"Convergence vs beep probability on {self.graph_label}",
        )
        ablation_rows = [
            (
                outcome.variant,
                outcome.convergence_rate,
                outcome.leaderless_rate,
                outcome.mean_rounds,
            )
            for outcome in self.ablations
        ]
        ablation_table = render_table(
            ["variant", "conv. rate", "leaderless rate", "mean rounds"],
            ablation_rows,
            title="Structural ablations",
        )
        return sweep_table + "\n\n" + ablation_table


#: Display label and registry name of each structural ablation variant.
ABLATION_VARIANTS: Tuple[Tuple[str, str], ...] = (
    ("bfw (full)", "bfw"),
    ("no-freeze", "bfw-no-freeze"),
    ("no-relay", "bfw-no-relay"),
)


def ablation_experiment(
    diameter: int = 24,
    probabilities: Sequence[float] = (0.05, 0.1, 0.25, 0.5, 0.75, 0.9),
    num_seeds: int = 10,
    master_seed: int = 5,
    max_rounds_factor: float = 150.0,
    batched: Optional[bool] = None,
    backend: BackendSpec = None,
    shard_size: "ShardSize" = None,
    heartbeat_interval: Optional[int] = None,
    kernel: Optional[str] = None,
) -> AblationResult:
    """Sweep ``p`` and test the structural ablation variants (experiment E8).

    Every cell of the sweep (one value of ``p``, or one ablated variant)
    runs on the chosen :mod:`repro.exec` backend; the reported rates and
    round counts are identical to the per-seed loop on all of them.
    ``batched=True`` is a deprecated shim for ``backend="batched"``.
    """
    resolved = resolve_backend_with_deprecated_batched(
        backend,
        batched,
        default="sequential",
        what="ablation_experiment(batched=...)",
        shard_size=shard_size,
        heartbeat_interval=heartbeat_interval,
        kernel=kernel,
    )
    graph_spec = GraphSpec(family="path", n=diameter + 1)
    budget = int(max_rounds_factor * diameter * diameter) + 1000
    # The ablated variants may fail to converge; keep their budget small so
    # the experiment terminates quickly while still being conclusive.
    ablation_budget = min(budget, 40 * diameter * diameter)

    probability_cells = tuple(
        ExecutionCell(
            protocol=ProtocolSpecConfig(
                name="bfw", params={"beep_probability": probability}
            ),
            graph=graph_spec,
            seeds=trial_seeds(master_seed, f"ablation/p={probability}", num_seeds),
            max_rounds=budget,
        )
        for probability in probabilities
    )
    variant_cells = tuple(
        ExecutionCell(
            protocol=ProtocolSpecConfig(name=name),
            graph=graph_spec,
            seeds=trial_seeds(master_seed, f"ablation/{label}", num_seeds),
            max_rounds=ablation_budget,
        )
        for label, name in ABLATION_VARIANTS
    )
    outcomes = resolved.run_cell_outcomes(probability_cells + variant_cells)
    sweep_outcomes = outcomes[: len(probability_cells)]
    variant_outcomes = outcomes[len(probability_cells) :]

    sweep_points: List[ParameterSweepPoint] = []
    for probability, outcome in zip(probabilities, sweep_outcomes):
        rounds: List[float] = []
        converged = 0
        for result in outcome.results:
            if result.converged:
                converged += 1
                rounds.append(float(result.convergence_round))
            else:
                rounds.append(float(result.rounds_executed))
        sweep_points.append(
            ParameterSweepPoint(
                beep_probability=probability,
                rounds=summarize_sample(rounds),
                convergence_rate=converged / num_seeds,
            )
        )

    ablations: List[AblationOutcome] = []
    for (label, _), outcome in zip(ABLATION_VARIANTS, variant_outcomes):
        converged = 0
        leaderless = 0
        rounds = []
        for result in outcome.results:
            if result.converged:
                converged += 1
                rounds.append(float(result.convergence_round))
            else:
                rounds.append(float(result.rounds_executed))
            if result.final_leader_count == 0:
                leaderless += 1
        ablations.append(
            AblationOutcome(
                variant=label,
                convergence_rate=converged / num_seeds,
                leaderless_rate=leaderless / num_seeds,
                mean_rounds=float(np.mean(rounds)),
            )
        )
    return AblationResult(
        sweep_points=tuple(sweep_points),
        ablations=tuple(ablations),
        graph_label=variant_outcomes[0].topology_name,
    )
