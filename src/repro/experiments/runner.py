"""Trial and sweep runners: dispatching protocols onto the right simulator.

Three kinds of protocol objects appear in the experiments:

* constant-state beeping protocols (BFW and its variants) — executed with
  the vectorised engine;
* memory protocols (ID broadcast, knockout, epoch baselines) — executed with
  the :class:`~repro.beeping.simulator.MemorySimulator` (and, replica for
  replica identically, with :class:`~repro.batch.memory.BatchedMemoryEngine`
  when a whole seed batch runs at once);
* standalone runners (the pipelined O(D + log n) baseline) — executed through
  their own ``run(topology, rng, max_rounds)`` method.

:func:`run_protocol_on` hides that dispatch so that the sweep code, the
Table-1 generator, and the CLI all share one entry point.  *How* a sweep's
cells are executed — per-trial loop, batched state arrays, a process pool —
is delegated to the pluggable :mod:`repro.exec` backends:
:func:`run_sweep` accepts ``backend=`` (an
:class:`~repro.exec.ExecutionBackend` instance or a spec string such as
``"batched"`` or ``"process:4"``) and produces byte-identical records on
every backend under matched seeds.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.baselines import (
    EmekKerenStyleElection,
    GilbertNewportKnockout,
    IDBroadcastElection,
    PipelinedIDElection,
)
from repro.beeping.engine import VectorizedEngine
from repro.beeping.simulator import MemorySimulator, SimulationResult
from repro.core.protocol import BeepingProtocol, MemoryProtocol
from repro.core.registry import available_protocols, create_protocol
from repro.errors import ConfigurationError
from repro.exec import (
    BackendSpec,
    CellCompleted,
    ExecutionCell,
    ProgressHook,
    ShardProgress,
    ShardSize,
    resolve_backend_with_deprecated_batched,
)
from repro.experiments.config import SweepConfig, TrialConfig
from repro.experiments.results import TrialRecord
from repro.experiments.seeds import rng_from, trial_seeds
from repro.graphs.generators import make_graph
from repro.graphs.topology import Topology

RngLike = Union[int, np.random.Generator, None]

#: Names understood by :func:`instantiate_protocol` in addition to the BFW
#: registry: baseline identifiers mapped to factories that may need graph
#: knowledge.
BASELINE_NAMES: Tuple[str, ...] = (
    "id-broadcast",
    "id-broadcast-random",
    "pipelined-ids",
    "gilbert-newport",
    "emek-keren",
)


def instantiate_protocol(
    name: str,
    topology: Topology,
    params: Optional[Dict[str, object]] = None,
) -> object:
    """Build a protocol (BFW-family or baseline) for a given topology.

    Graph knowledge (``n``, ``D``) is injected automatically for protocols
    that require it, mirroring the "Knowledge" column of Table 1.
    """
    params = dict(params or {})
    diameter = max(1, topology.diameter())
    if name in available_protocols():
        return create_protocol(name, diameter=diameter, n=topology.n, **params)
    if name == "id-broadcast":
        params.setdefault("id_mode", "unique")
        return IDBroadcastElection(diameter=diameter, n=topology.n, **params)
    if name == "id-broadcast-random":
        params.pop("id_mode", None)
        return IDBroadcastElection(
            diameter=diameter, n=topology.n, id_mode="random", **params
        )
    if name == "pipelined-ids":
        return PipelinedIDElection(**params)
    if name == "gilbert-newport":
        return GilbertNewportKnockout(**params)
    if name == "emek-keren":
        return EmekKerenStyleElection(diameter=diameter, **params)
    raise ConfigurationError(
        f"unknown protocol {name!r}; BFW-family protocols: "
        f"{', '.join(available_protocols())}; baselines: {', '.join(BASELINE_NAMES)}"
    )


def run_protocol_on(
    topology: Topology,
    protocol: object,
    rng: RngLike = None,
    max_rounds: Optional[int] = None,
) -> SimulationResult:
    """Run any supported protocol object on ``topology`` and return the result."""
    if isinstance(protocol, BeepingProtocol):
        engine = VectorizedEngine(topology, protocol)
        return engine.run(max_rounds=max_rounds, rng=rng)
    if isinstance(protocol, MemoryProtocol):
        simulator = MemorySimulator(topology, protocol)
        return simulator.run(max_rounds=max_rounds, rng=rng)
    run = getattr(protocol, "run", None)
    if callable(run):
        return run(topology, rng=rng, max_rounds=max_rounds)
    raise ConfigurationError(
        f"object {protocol!r} is not a runnable protocol (expected a "
        "BeepingProtocol, a MemoryProtocol, or an object with a run() method)"
    )


def run_protocol_batch_on(
    topology: Topology,
    protocol: object,
    seeds: Sequence[RngLike],
    max_rounds: Optional[int] = None,
    schedule=None,
):
    """Run one seeded replica per entry of ``seeds`` and return a batch.

    Constant-state protocols advance together in a
    :class:`~repro.batch.engine.BatchedEngine`, batch-supported memory
    baselines in a :class:`~repro.batch.memory.BatchedMemoryEngine`, and
    standalone runners loop over :func:`run_protocol_on`.  Under matched
    seeds the outcome is replica-for-replica identical to that loop either
    way — see :class:`~repro.experiments.montecarlo.MonteCarloRunner`.
    ``schedule`` (a :class:`~repro.dynamics.schedules.TopologySchedule`)
    runs the batch on a time-varying topology and requires a constant-state
    protocol.

    Returns
    -------
    repro.batch.results.BatchResult
    """
    from repro.experiments.montecarlo import MonteCarloRunner

    return MonteCarloRunner(max_rounds=max_rounds).run(
        topology, protocol, list(seeds), schedule=schedule
    )


def run_trial(trial: TrialConfig) -> TrialRecord:
    """Execute one trial described by a :class:`TrialConfig`."""
    graph_rng = rng_from(trial.graph.seed, "graph", trial.graph.family, trial.graph.n)
    topology = make_graph(trial.graph.family, trial.graph.n, rng=graph_rng)
    protocol = instantiate_protocol(
        trial.protocol.name, topology, dict(trial.protocol.params)
    )
    result = run_protocol_on(
        topology, protocol, rng=trial.seed, max_rounds=trial.max_rounds
    )
    return TrialRecord(
        protocol=trial.protocol.label,
        graph=trial.graph.label,
        n=topology.n,
        diameter=topology.diameter(),
        seed=trial.seed,
        converged=result.converged,
        convergence_round=result.convergence_round,
        rounds_executed=result.rounds_executed,
    )


def sweep_cells(sweep: SweepConfig) -> Tuple[ExecutionCell, ...]:
    """The sweep's (protocol, graph) cells as backend-executable units.

    Seeds are derived per cell exactly as the historical per-trial loop
    derived them, so any :class:`~repro.exec.ExecutionBackend` fed these
    cells reproduces that loop record for record.
    """
    return tuple(
        ExecutionCell(
            protocol=protocol_spec,
            graph=graph_spec,
            seeds=trial_seeds(
                sweep.master_seed,
                f"{sweep.name}/{protocol_spec.label}/{graph_spec.label}",
                sweep.num_seeds,
            ),
            max_rounds=sweep.max_rounds,
        )
        for protocol_spec, graph_spec in sweep.cells()
    )


def cell_progress_adapter(
    progress: Optional[Callable[[str], None]],
) -> Optional[ProgressHook]:
    """Adapt a line-oriented progress callback to backend cell events.

    Each event carries only its own cell's outcome, so the per-cell mean is
    computed from that cell's records alone (the historical implementation
    re-filtered the whole accumulated record list after every cell, which
    made progress reporting quadratic in the number of cells).

    ``progress`` may be any ``Callable[[str], None]`` — including a
    :class:`~repro.telemetry.progress.ProgressReporter`, in which case each
    event is additionally recorded into the reporter's telemetry JSONL
    stream (that is how ``--telemetry`` reaches ``run_sweep``).
    """
    if progress is None:
        return None

    def on_cell(event: CellCompleted) -> None:
        if isinstance(event, ShardProgress):
            # In-flight heartbeat (backends with --heartbeat only): the
            # telemetry stream gets a "progress" record; the console stays
            # quiet — beats can arrive thousands per cell and the per-cell
            # lines below remain the human-readable summary.
            record_beat = getattr(progress, "shard_progress", None)
            if callable(record_beat):
                record_beat(event)
            return
        if getattr(event, "shard_index", None) is not None:
            # Per-shard sub-progress (sharding backends only): one short
            # console line, and the telemetry stream gets a "shard" record.
            line = (
                f"  shard {event.shard_index + 1}/{event.shard_count} of "
                f"{event.cell.label} "
                f"({event.cell.num_replicas} replicas)"
            )
            if event.wall_seconds is not None:
                line += f" [{event.wall_seconds:.3f}s]"
            progress(line)
            record_event = getattr(progress, "cell_completed", None)
            if callable(record_event):
                record_event(event)
            return
        cell_records = event.outcome.to_records()
        mean_rounds = float(
            np.mean(
                [
                    record.convergence_round
                    if record.convergence_round is not None
                    else record.rounds_executed
                    for record in cell_records
                ]
            )
        )
        line = (
            f"{event.cell.protocol.label:<28} {event.cell.graph.label:<18} "
            f"mean rounds: {mean_rounds:10.1f}"
        )
        if event.wall_seconds is not None:
            line += f"  [{event.wall_seconds:7.3f}s"
            if event.rounds_advanced is not None and event.wall_seconds > 0:
                rate = event.rounds_advanced / event.wall_seconds
                line += f", {rate:,.0f} replica-rounds/s"
            line += "]"
        progress(line)
        record_event = getattr(progress, "cell_completed", None)
        if callable(record_event):
            record_event(event, mean_rounds=mean_rounds)

    return on_cell


def run_sweep(
    sweep: SweepConfig,
    progress: Optional[Callable[[str], None]] = None,
    batched: Optional[bool] = None,
    backend: BackendSpec = None,
    shard_size: "ShardSize" = None,
    heartbeat_interval: Optional[int] = None,
    kernel: Optional[str] = None,
) -> Tuple[TrialRecord, ...]:
    """Run every (protocol, graph, seed) combination of a sweep.

    Parameters
    ----------
    sweep:
        The sweep description.
    progress:
        Optional callback invoked with a human-readable line after each cell
        (used by the CLI to report progress).
    backend:
        How the sweep's cells are executed: an
        :class:`~repro.exec.ExecutionBackend` instance or a spec string —
        ``"sequential"`` (the default; per-trial loop), ``"batched"`` (one
        state array per cell) or ``"process:N"`` (cells sharded across N
        worker processes).  Records are byte-identical on every backend
        under the same master seed; only the wall-clock changes.
    shard_size:
        Maximum seeds per work unit (``--shard-size``): a positive int or
        ``"auto"`` (``ceil(R / workers)`` per cell).  Lets ``process:N``
        parallelise within a cell; output stays byte-identical.  ``None``
        keeps whole cells.
    heartbeat_interval:
        Poll an in-flight heartbeat every K engine rounds (``--heartbeat``)
        and stream it to ``progress`` as ``ShardProgress`` events /
        ``"progress"`` telemetry records.  ``None`` keeps heartbeats off;
        records are byte-identical either way.
    kernel:
        Default round kernel for the batched engine (``--kernel``): a
        :mod:`repro.batch.kernels` spec stamped onto cells that do not
        choose their own.  Records are byte-identical on every kernel;
        only the wall-clock changes.
    batched:
        Deprecated: ``batched=True`` is a shim for ``backend="batched"``
        and emits a :class:`DeprecationWarning`.
    """
    resolved = resolve_backend_with_deprecated_batched(
        backend,
        batched,
        default="sequential",
        what="run_sweep(batched=...)",
        shard_size=shard_size,
        heartbeat_interval=heartbeat_interval,
        kernel=kernel,
    )
    return resolved.run_cells(
        sweep_cells(sweep), progress=cell_progress_adapter(progress)
    )
