"""E15 — leader extinction under churn: quantifying the Lemma 9 violation.

On a static connected graph, Lemma 9 guarantees every BFW execution keeps at
least one leader.  Under edge churn that guarantee breaks: colliding
elimination waves rewired mid-collision can destroy *both* surviving
leaders, after which the configuration is absorbing — no transition creates
a leader, and the replica burns its whole round budget.  PR 4 recorded this
as a measured (single-seed) finding; this experiment makes it a first-class
result by attaching the batched
:class:`~repro.analysis.LeaderExtinctionObserver` to every replica of a
churn-rate × family × size sweep and tabulating the measured
leader-extinction rate per cell.

The observers ride the cells as pure-data
:class:`~repro.batch.observers.ObserverSpec` entries, so the sweep runs on
any :mod:`repro.exec` backend with byte-identical records *and*
observations; the default is ``"batched"``, where one engine pass observes
all replicas of a cell at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.batch.observers import LeaderExtinctionReport, ObserverSpec
from repro.errors import ConfigurationError
from repro.exec import BackendSpec, ExecutionCell, ShardSize, resolve_backend
from repro.experiments.config import GraphSpec, ProtocolSpecConfig
from repro.experiments.dynamics import (
    DEFAULT_DYNAMIC_MAX_ROUNDS,
    capped_dynamic_budget,
    schedule_spec_for_rate,
)
from repro.experiments.results import TrialRecord
from repro.experiments.runner import cell_progress_adapter
from repro.experiments.seeds import DEFAULT_MASTER_SEED, trial_seeds
from repro.viz.table_format import render_table


@dataclass(frozen=True)
class ExtinctionCellRow:
    """Aggregated extinction outcome of one (graph, size, churn rate) cell.

    Attributes
    ----------
    extinction_rate:
        Fraction of replicas that ever reached a leaderless round.
    absorbed_rate:
        Fraction of replicas that *ended* leaderless (under BFW the
        leaderless state is absorbing, so this matches ``extinction_rate``
        whenever the budget outlives the extinction event).
    mean_extinction_round:
        Mean first-extinction round over extinct replicas (``None`` when no
        replica went extinct).
    convergence_rate, capped_runs:
        Convergence bookkeeping of the same replicas (capped = burned the
        whole round budget without electing a leader).
    """

    graph: str
    schedule: str
    n: int
    diameter: int
    churn_rate: int
    num_replicas: int
    extinction_rate: float
    absorbed_rate: float
    mean_extinction_round: Optional[float]
    convergence_rate: float
    capped_runs: int
    report: LeaderExtinctionReport


@dataclass(frozen=True)
class ExtinctionResult:
    """Outcome of the leader-extinction sweep (experiment E15)."""

    protocol: str
    schedule_kind: str
    #: The requested budget, or the default ceiling
    #: (:data:`DEFAULT_DYNAMIC_MAX_ROUNDS`) when none was requested — in
    #: the latter case each cell runs under
    #: ``min(engine default, ceiling)``; see :func:`capped_dynamic_budget`.
    max_rounds: int
    rows: Tuple[ExtinctionCellRow, ...]
    records: Tuple[TrialRecord, ...]

    def render(self) -> str:
        """Plain-text table: leader-extinction rate vs churn rate."""
        table_rows = [
            (
                row.graph,
                row.churn_rate,
                row.schedule,
                row.n,
                row.diameter,
                row.num_replicas,
                row.extinction_rate,
                row.absorbed_rate,
                (
                    "-"
                    if row.mean_extinction_round is None
                    else round(row.mean_extinction_round, 1)
                ),
                row.convergence_rate,
                row.capped_runs,
            )
            for row in self.rows
        ]
        return render_table(
            [
                "graph",
                "rate",
                "schedule",
                "n",
                "D",
                "R",
                "extinct",
                "absorbed",
                "mean ext. round",
                "conv. rate",
                "capped",
            ],
            table_rows,
            title=(
                f"Leader extinction — {self.protocol} under "
                f"{self.schedule_kind} (E15; Lemma 9 violations per replica, "
                f"round budget <= {self.max_rounds})"
            ),
        )


def leader_extinction_experiment(
    protocol: str = "bfw",
    families: Sequence[str] = ("cycle",),
    sizes: Sequence[int] = (16, 32),
    churn_rates: Sequence[int] = (0, 1, 2, 4),
    schedule_kind: str = "edge-churn",
    num_seeds: int = 20,
    master_seed: int = DEFAULT_MASTER_SEED,
    max_rounds: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    backend: BackendSpec = None,
    shard_size: "ShardSize" = None,
    heartbeat_interval: Optional[int] = None,
    kernel: Optional[str] = None,
) -> ExtinctionResult:
    """Measure the leader-extinction rate across churn rate × family × size.

    Every cell carries a ``leader-extinction`` :class:`ObserverSpec`; the
    executing backend attaches the batched observer to the engine run and
    ships the per-replica :class:`LeaderExtinctionReport` back with the
    records.  Rate 0 is the explicit static schedule, where Lemma 9 holds
    and the measured extinction rate must be exactly zero — the sweep's
    built-in control row.

    The default round budget is the engines' default capped at
    :data:`DEFAULT_DYNAMIC_MAX_ROUNDS`, per cell (extinct replicas are
    absorbing and never early-stop, so an uncapped budget only measures the
    stall — and a cap must never *raise* a small graph's budget).
    """
    if num_seeds < 1:
        raise ConfigurationError(f"num_seeds must be >= 1; got {num_seeds}")
    if not families or not sizes or not churn_rates:
        raise ConfigurationError(
            "leader_extinction_experiment needs at least one family, size "
            "and churn rate"
        )
    ceiling = max_rounds if max_rounds is not None else DEFAULT_DYNAMIC_MAX_ROUNDS
    if ceiling < 1:
        raise ConfigurationError(f"max_rounds must be >= 1; got {ceiling}")
    resolved = resolve_backend(
        backend,
        default="batched",
        shard_size=shard_size,
        heartbeat_interval=heartbeat_interval,
        kernel=kernel,
    )

    cells = []
    rates = []
    for family in families:
        for n in sizes:
            graph_spec = GraphSpec(family=family, n=n)
            budget = (
                max_rounds
                if max_rounds is not None
                else capped_dynamic_budget(graph_spec)
            )
            for rate in churn_rates:
                schedule_seed = trial_seeds(
                    master_seed, f"extinction-schedule/{family}/{n}/{rate}", 1
                )[0]
                spec = schedule_spec_for_rate(schedule_kind, int(rate), schedule_seed)
                cells.append(
                    ExecutionCell(
                        protocol=ProtocolSpecConfig(name=protocol),
                        graph=graph_spec,
                        seeds=trial_seeds(
                            master_seed,
                            f"extinction/{protocol}/{family}/{n}/{spec.label}",
                            num_seeds,
                        ),
                        max_rounds=budget,
                        schedule=spec,
                        observers=(ObserverSpec("leader-extinction"),),
                    )
                )
                rates.append(int(rate))

    outcomes = resolved.run_cell_outcomes(
        tuple(cells), progress=cell_progress_adapter(progress)
    )

    rows = []
    records = []
    for rate, outcome in zip(rates, outcomes):
        cell_records = outcome.to_records()
        records.extend(cell_records)
        assert outcome.observations is not None
        report = outcome.observations[0]
        assert isinstance(report, LeaderExtinctionReport)
        rows.append(
            ExtinctionCellRow(
                graph=outcome.cell.graph.label,
                schedule=outcome.cell.schedule.label,
                n=outcome.n,
                diameter=outcome.diameter,
                churn_rate=rate,
                num_replicas=outcome.cell.num_replicas,
                extinction_rate=report.extinction_rate,
                absorbed_rate=report.absorbed_rate,
                mean_extinction_round=report.mean_extinction_round(),
                convergence_rate=float(
                    np.mean([record.converged for record in cell_records])
                ),
                capped_runs=sum(
                    1 for record in cell_records if not record.converged
                ),
                report=report,
            )
        )

    return ExtinctionResult(
        protocol=protocol,
        schedule_kind=schedule_kind,
        max_rounds=ceiling,
        rows=tuple(rows),
        records=tuple(records),
    )
