"""E14 — BFW under edge churn: the dynamic-graph experiment.

The paper's guarantees are proved on a static connected graph; its Section 5
discussion is about what breaks outside those assumptions.  This experiment
probes that boundary empirically: the same constant-state protocol, the same
seeded replicas, but the communication graph churns while the protocol runs.
The sweep crosses churn rate × graph family × size, with churn rate ``0``
executed as an explicit ``static`` schedule — so the dynamic code path's
baseline row is byte-identical to the classical engines by construction.

Like every sweep-shaped experiment, the cells execute on any
:mod:`repro.exec` backend (``sequential``, ``batched``, ``process:N``) with
byte-identical records: schedules travel inside the cells as pure-data
:class:`~repro.dynamics.schedules.ScheduleSpec` objects and are rebuilt
deterministically inside whichever process runs the cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.dynamics.schedules import ScheduleSpec
from repro.errors import ConfigurationError
from repro.exec import BackendSpec, ExecutionCell, ShardSize, resolve_backend
from repro.experiments.config import GraphSpec, ProtocolSpecConfig
from repro.experiments.results import TrialRecord
from repro.experiments.runner import cell_progress_adapter
from repro.experiments.seeds import DEFAULT_MASTER_SEED, trial_seeds
from repro.stats.summary import Summary, summarize_sample
from repro.viz.table_format import render_table

#: Schedule kinds the churn-rate sweep knows how to parameterise.
DYNAMIC_SCHEDULE_KINDS: Tuple[str, ...] = ("edge-churn", "cut", "interpolate")

#: Ceiling on the default round budget for churned cells.  Edge churn can
#: eliminate every leader (impossible on a static graph), after which the
#: configuration is absorbing — no transition creates a leader, the replica
#: never early-stops, and an uncapped sweep burns the engines' generous
#: ``D² log n``-scaled default budget measuring nothing but the stall.  The
#: effective budget is ``min(engine default, this ceiling)`` (see
#: :func:`capped_dynamic_budget` — a cap must never *raise* a small graph's
#: budget), and capped replicas are reported per row (``capped_runs``)
#: instead of silently spinning.  Rate-0 (static) cells keep the engines'
#: default budget so their records stay byte-identical to the classical
#: scheduleless sweep.
DEFAULT_DYNAMIC_MAX_ROUNDS: int = 20_000


def capped_dynamic_budget(graph: GraphSpec) -> int:
    """The default round budget of a churned cell on ``graph``.

    ``min(default_round_budget(topology), DEFAULT_DYNAMIC_MAX_ROUNDS)``,
    with the topology built exactly as the cell itself builds it — so the
    cap only ever *lowers* the engines' default, never inflates the work a
    stalled replica burns on small graphs.
    """
    from repro.beeping.simulator import default_round_budget
    from repro.experiments.seeds import rng_from
    from repro.graphs.generators import make_graph

    topology = make_graph(
        graph.family,
        graph.n,
        rng=rng_from(graph.seed, "graph", graph.family, graph.n),
    )
    return min(DEFAULT_DYNAMIC_MAX_ROUNDS, default_round_budget(topology))


def schedule_spec_for_rate(
    kind: str, rate: int, seed: int
) -> ScheduleSpec:
    """Map one (schedule kind, churn rate) sweep point onto a ScheduleSpec.

    Rate ``0`` is always the explicit ``static`` schedule — the dynamic code
    path's identity element.  For ``edge-churn`` the rate is the number of
    edges added *and* removed per round; for ``cut`` it is the number of
    down-rounds per 8-round window; for ``interpolate`` it scales how fast
    the graph densifies into a clique (higher rate = faster morph).
    """
    if rate < 0:
        raise ConfigurationError(f"churn rate must be >= 0; got {rate}")
    if rate == 0:
        return ScheduleSpec("static")
    if kind == "edge-churn":
        return ScheduleSpec(
            "edge-churn",
            {"add_per_round": rate, "remove_per_round": rate, "seed": seed},
        )
    if kind == "cut":
        if rate > 8:
            raise ConfigurationError(
                f"cut rates are down-rounds per 8-round window and must be "
                f"<= 8; got {rate}"
            )
        return ScheduleSpec("cut", {"period": 8, "down_rounds": rate})
    if kind == "interpolate":
        return ScheduleSpec(
            "interpolate",
            {"target_family": "clique", "rounds": max(1, 256 // rate), "seed": seed},
        )
    raise ConfigurationError(
        f"unknown dynamic schedule kind {kind!r}; "
        f"known: {', '.join(DYNAMIC_SCHEDULE_KINDS)}"
    )


@dataclass(frozen=True)
class DynamicCellRow:
    """Aggregated outcome of one (graph, size, churn rate) cell.

    ``capped_runs`` counts the replicas that exhausted their round budget
    without converging (under churn these are typically leaderless,
    absorbing configurations — see the ROADMAP's measured leader-extinction
    finding, quantified by ``repro extinction``).
    """

    graph: str
    schedule: str
    n: int
    diameter: int
    churn_rate: int
    num_replicas: int
    convergence_rate: float
    rounds: Summary
    capped_runs: int = 0


@dataclass(frozen=True)
class DynamicResult:
    """Outcome of the dynamic-graph sweep (experiment E14)."""

    protocol: str
    schedule_kind: str
    rows: Tuple[DynamicCellRow, ...]
    records: Tuple[TrialRecord, ...]

    @property
    def capped_runs(self) -> int:
        """Replicas (over all cells) that burned their whole round budget."""
        return sum(row.capped_runs for row in self.rows)

    def render(self) -> str:
        """Plain-text table: convergence under increasing churn."""
        table_rows = [
            (
                row.graph,
                row.churn_rate,
                row.schedule,
                row.n,
                row.diameter,
                row.num_replicas,
                row.convergence_rate,
                row.capped_runs,
                row.rounds.mean,
                row.rounds.median,
                row.rounds.q95,
            )
            for row in self.rows
        ]
        return render_table(
            [
                "graph",
                "rate",
                "schedule",
                "n",
                "D",
                "R",
                "conv. rate",
                "capped",
                "mean rounds",
                "median",
                "q95",
            ],
            table_rows,
            title=(
                f"Dynamic graphs — {self.protocol} under {self.schedule_kind} "
                f"(E14; D is the initial graph's diameter; 'capped' counts "
                f"replicas that exhausted their round budget)"
            ),
        )


def dynamic_experiment(
    protocol: str = "bfw",
    families: Sequence[str] = ("cycle",),
    sizes: Sequence[int] = (32, 64),
    churn_rates: Sequence[int] = (0, 1, 2, 4),
    schedule_kind: str = "edge-churn",
    num_seeds: int = 10,
    master_seed: int = DEFAULT_MASTER_SEED,
    max_rounds: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    backend: BackendSpec = None,
    shard_size: "ShardSize" = None,
    heartbeat_interval: Optional[int] = None,
    kernel: Optional[str] = None,
) -> DynamicResult:
    """Sweep churn rate × graph family × size for one protocol (E14).

    Every (family, size, rate) combination is one
    :class:`~repro.exec.ExecutionCell` whose schedule spec derives its churn
    seed from ``master_seed``, so the whole experiment is reproducible from
    one integer and produces byte-identical records on every execution
    backend (the default is ``"batched"``, where one adjacency swap per
    round serves all replicas).

    With ``max_rounds=None``, churned cells (rate > 0) run under
    :func:`capped_dynamic_budget` — the engines' default budget capped at
    :data:`DEFAULT_DYNAMIC_MAX_ROUNDS`: churn can leave a replica
    leaderless and absorbing, and on large graphs such replicas would
    otherwise spin through a much larger default budget.  Capped replicas
    are counted per row (:attr:`DynamicCellRow.capped_runs`).  Rate-0 cells
    keep the engines' default budget, preserving bit-identity with the
    classical static sweep.
    """
    if num_seeds < 1:
        raise ConfigurationError(f"num_seeds must be >= 1; got {num_seeds}")
    if not families or not sizes or not churn_rates:
        raise ConfigurationError(
            "dynamic_experiment needs at least one family, size and churn rate"
        )
    resolved = resolve_backend(
        backend,
        default="batched",
        shard_size=shard_size,
        heartbeat_interval=heartbeat_interval,
        kernel=kernel,
    )

    cells = []
    rates = []
    for family in families:
        for n in sizes:
            capped_budget = None
            if max_rounds is None and any(rate > 0 for rate in churn_rates):
                capped_budget = capped_dynamic_budget(GraphSpec(family=family, n=n))
            for rate in churn_rates:
                schedule_seed = trial_seeds(
                    master_seed, f"dynamic-schedule/{family}/{n}/{rate}", 1
                )[0]
                spec = schedule_spec_for_rate(schedule_kind, int(rate), schedule_seed)
                cell_budget = max_rounds
                if cell_budget is None and rate > 0:
                    cell_budget = capped_budget
                cell = ExecutionCell(
                    protocol=ProtocolSpecConfig(name=protocol),
                    graph=GraphSpec(family=family, n=n),
                    seeds=trial_seeds(
                        master_seed,
                        f"dynamic/{protocol}/{family}/{n}/{spec.label}",
                        num_seeds,
                    ),
                    max_rounds=cell_budget,
                    schedule=spec,
                )
                cells.append(cell)
                rates.append(int(rate))

    outcomes = resolved.run_cell_outcomes(
        tuple(cells), progress=cell_progress_adapter(progress)
    )

    rows = []
    records = []
    for rate, outcome in zip(rates, outcomes):
        cell_records = outcome.to_records()
        records.extend(cell_records)
        effective = [
            float(
                record.convergence_round
                if record.convergence_round is not None
                else record.rounds_executed
            )
            for record in cell_records
        ]
        rows.append(
            DynamicCellRow(
                graph=outcome.cell.graph.label,
                schedule=outcome.cell.schedule.label,
                n=outcome.n,
                diameter=outcome.diameter,
                churn_rate=rate,
                num_replicas=outcome.cell.num_replicas,
                convergence_rate=float(
                    np.mean([record.converged for record in cell_records])
                ),
                rounds=summarize_sample(effective),
                # A non-converged replica has no other early exit: it ran
                # its entire round budget, i.e. the cap bound it.
                capped_runs=sum(
                    1 for record in cell_records if not record.converged
                ),
            )
        )

    return DynamicResult(
        protocol=protocol,
        schedule_kind=schedule_kind,
        rows=tuple(rows),
        records=tuple(records),
    )
