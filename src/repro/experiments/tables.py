"""Regeneration of Table 1: the protocol comparison.

The paper's Table 1 lists, for each leader-election algorithm in the beeping
model, its round complexity, whether it needs unique identifiers, the global
knowledge it assumes, how safety is guaranteed, its state complexity and
whether it detects termination.  We reproduce the table in two parts:

* the *qualitative* columns come from each implementation's
  :class:`~repro.baselines.base.BaselineInfo` (or, for BFW, from the paper's
  own row), and
* a *measured* column is added: the mean convergence round of our
  implementation on a set of benchmark graphs, which is what turns the table
  into an executable comparison.

The defaults keep graphs small enough that the whole table regenerates in a
couple of minutes; the CLI exposes flags to scale it up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.baselines import (
    EmekKerenStyleElection,
    GilbertNewportKnockout,
    IDBroadcastElection,
    PipelinedIDElection,
)
from repro.baselines.base import BaselineInfo
from repro.exec import (
    BackendSpec,
    ExecutionCell,
    ShardSize,
    resolve_backend_with_deprecated_batched,
)
from repro.experiments.config import GraphSpec, ProtocolSpecConfig, SweepConfig
from repro.experiments.results import CellSummary, TrialRecord, aggregate_records
from repro.experiments.runner import cell_progress_adapter, sweep_cells
from repro.viz.table_format import render_table

#: The BFW rows of Table 1, as stated in the paper.
BFW_UNIFORM_INFO = BaselineInfo(
    reference="This paper (uniform)",
    round_complexity="O(D^2 log n)",
    unique_ids=False,
    knowledge="none",
    safety="w.h.p.",
    states="O(1)",
    termination_detection=False,
)

BFW_NONUNIFORM_INFO = BaselineInfo(
    reference="This paper (p = 1/(D+1))",
    round_complexity="O(D log n)",
    unique_ids=False,
    knowledge="D",
    safety="w.h.p.",
    states="O(1)",
    termination_detection=False,
)

#: Qualitative info per protocol label used in the table.
TABLE1_INFO: Mapping[str, BaselineInfo] = {
    "bfw": BFW_UNIFORM_INFO,
    "bfw-nonuniform": BFW_NONUNIFORM_INFO,
    "id-broadcast": IDBroadcastElection.info,
    "id-broadcast-random": BaselineInfo(
        reference="[11]-style (randomised IDs)",
        round_complexity="O(D log n)",
        unique_ids=False,
        knowledge="n, D",
        safety="w.h.p.",
        states="Omega(n)",
        termination_detection=True,
    ),
    "pipelined-ids": PipelinedIDElection.info,
    "gilbert-newport": GilbertNewportKnockout.info,
    "emek-keren": EmekKerenStyleElection.info,
}

#: Protocols included in the default Table-1 regeneration, in display order.
DEFAULT_TABLE1_PROTOCOLS: Tuple[str, ...] = (
    "id-broadcast",
    "id-broadcast-random",
    "pipelined-ids",
    "emek-keren",
    "gilbert-newport",
    "bfw",
    "bfw-nonuniform",
)

#: Graph set used for the measured column.  The Gilbert–Newport knockout is
#: clique-only, so a clique is always part of the set.
DEFAULT_TABLE1_GRAPHS: Tuple[GraphSpec, ...] = (
    GraphSpec(family="path", n=33),
    GraphSpec(family="cycle", n=64),
    GraphSpec(family="erdos-renyi", n=64, seed=1),
    GraphSpec(family="clique", n=64),
)

#: Protocols that are only correct on single-hop (clique) graphs.
CLIQUE_ONLY_PROTOCOLS: Tuple[str, ...] = ("gilbert-newport",)


@dataclass(frozen=True)
class Table1Row:
    """One row of the regenerated Table 1."""

    protocol: str
    info: BaselineInfo
    measured_rounds: Mapping[str, float]
    convergence_rates: Mapping[str, float]

    def cells(self, graph_labels: Sequence[str]) -> Tuple[object, ...]:
        """The row rendered as table cells for the given graph columns."""
        qualitative = (
            self.protocol,
            self.info.round_complexity,
            "yes" if self.info.unique_ids else "no",
            self.info.knowledge,
            self.info.safety,
            self.info.states,
            "yes" if self.info.termination_detection else "no",
        )
        measured = []
        for label in graph_labels:
            value = self.measured_rounds.get(label)
            if value is None:
                measured.append("-")
            elif self.convergence_rates.get(label, 1.0) < 1.0:
                measured.append(f">{value:.0f}")
            else:
                measured.append(f"{value:.0f}")
        return qualitative + tuple(measured)


@dataclass(frozen=True)
class Table1Result:
    """The regenerated Table 1 with its underlying raw records."""

    rows: Tuple[Table1Row, ...]
    graph_labels: Tuple[str, ...]
    records: Tuple[TrialRecord, ...]
    summaries: Tuple[CellSummary, ...]

    def render(self) -> str:
        """Plain-text rendering of the table."""
        headers = (
            ["Protocol", "Round complexity", "IDs", "Knowledge", "Safety", "States", "Term."]
            + [f"rounds {label}" for label in self.graph_labels]
        )
        return render_table(
            headers,
            [row.cells(self.graph_labels) for row in self.rows],
            title="Table 1 (regenerated): leader election in the beeping model",
        )


def generate_table1(
    protocols: Sequence[str] = DEFAULT_TABLE1_PROTOCOLS,
    graphs: Sequence[GraphSpec] = DEFAULT_TABLE1_GRAPHS,
    num_seeds: int = 10,
    master_seed: int = 1,
    progress=None,
    batched: Optional[bool] = None,
    backend: BackendSpec = None,
    shard_size: "ShardSize" = None,
    heartbeat_interval: Optional[int] = None,
    kernel: Optional[str] = None,
) -> Table1Result:
    """Run the Table-1 comparison and return the regenerated table.

    Parameters
    ----------
    protocols:
        Protocol identifiers (see :data:`DEFAULT_TABLE1_PROTOCOLS`).
    graphs:
        Benchmark graphs for the measured column.
    num_seeds:
        Trials per (protocol, graph) cell.
    master_seed:
        Master seed for reproducibility.
    progress:
        Optional per-cell progress callback (a human-readable line per
        finished cell, as in :func:`~repro.experiments.runner.run_sweep`).
    backend:
        :mod:`repro.exec` backend executing the table's (protocol, graph)
        cells — ``"sequential"`` (default), ``"batched"`` (one state array
        per cell: the constant-state engine for the BFW rows, the batched
        memory engine for the baseline rows; standalone runners keep the
        loop) or ``"process:N"``.  All cells are dispatched in one backend
        call, so a process pool shards the whole table at once.  Every
        measured number is identical under the same ``master_seed``; only
        the wall-clock changes.
    shard_size:
        Maximum seeds per work unit (int or ``"auto"`` =
        ``ceil(R / workers)``): lets ``process:N`` split each cell's seed
        list across workers, byte-identically.  ``None`` keeps whole cells.
    batched:
        Deprecated shim for ``backend="batched"`` (emits a
        :class:`DeprecationWarning`).
    """
    resolved = resolve_backend_with_deprecated_batched(
        backend,
        batched,
        default="sequential",
        what="generate_table1(batched=...)",
        shard_size=shard_size,
        heartbeat_interval=heartbeat_interval,
        kernel=kernel,
    )
    graph_labels = tuple(graph.label for graph in graphs)
    cells: List[ExecutionCell] = []
    for name in protocols:
        eligible_graphs = tuple(
            graph
            for graph in graphs
            if name not in CLIQUE_ONLY_PROTOCOLS or graph.family == "clique"
        )
        if not eligible_graphs:
            continue
        sweep = SweepConfig(
            name=f"table1/{name}",
            protocols=(ProtocolSpecConfig(name=name),),
            graphs=eligible_graphs,
            num_seeds=num_seeds,
            master_seed=master_seed,
        )
        cells.extend(sweep_cells(sweep))
    records: List[TrialRecord] = list(
        resolved.run_cells(tuple(cells), progress=cell_progress_adapter(progress))
    )

    summaries = aggregate_records(records)
    by_cell: Dict[Tuple[str, str], CellSummary] = {
        (summary.protocol, summary.graph): summary for summary in summaries
    }

    rows: List[Table1Row] = []
    for name in protocols:
        info = TABLE1_INFO.get(
            name,
            BaselineInfo(
                reference=name,
                round_complexity="?",
                unique_ids=False,
                knowledge="?",
                safety="?",
                states="?",
                termination_detection=False,
            ),
        )
        measured: Dict[str, float] = {}
        rates: Dict[str, float] = {}
        for label in graph_labels:
            summary = by_cell.get((name, label))
            if summary is not None:
                measured[label] = summary.rounds.mean
                rates[label] = summary.convergence_rate
        rows.append(
            Table1Row(
                protocol=name,
                info=info,
                measured_rounds=measured,
                convergence_rates=rates,
            )
        )
    return Table1Result(
        rows=tuple(rows),
        graph_labels=graph_labels,
        records=tuple(records),
        summaries=summaries,
    )
