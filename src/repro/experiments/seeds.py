"""Deterministic seed management for experiments.

Every experiment derives its randomness from a single master seed through
``numpy.random.SeedSequence``, so that

* re-running an experiment with the same master seed reproduces it exactly,
* trials are statistically independent (spawned sequences do not overlap),
* individual trials can be re-run in isolation given their spawned seed.
"""

from __future__ import annotations

import zlib
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError

#: Default master seed used by the shipped benchmarks.
DEFAULT_MASTER_SEED = 20250212


def spawn_seeds(master_seed: int, count: int) -> Tuple[int, ...]:
    """Derive ``count`` independent 32-bit seeds from ``master_seed``."""
    if count < 0:
        raise ConfigurationError(f"count must be >= 0; got {count}")
    sequence = np.random.SeedSequence(master_seed)
    children = sequence.spawn(count)
    return tuple(int(child.generate_state(1)[0]) for child in children)


def rng_from(master_seed: int, *keys: Union[int, str]) -> np.random.Generator:
    """A generator deterministically derived from a master seed and a key path.

    String keys are hashed into the seed material, so
    ``rng_from(0, "table1", "bfw", 3)`` always yields the same stream while
    remaining independent of ``rng_from(0, "table1", "bfw", 4)``.
    """
    material: List[int] = [int(master_seed) & 0xFFFFFFFF]
    for key in keys:
        if isinstance(key, str):
            # zlib.crc32 is stable across processes, unlike the built-in hash().
            material.append(zlib.crc32(key.encode("utf-8")) & 0xFFFFFFFF)
        else:
            material.append(int(key) & 0xFFFFFFFF)
    return np.random.default_rng(np.random.SeedSequence(material))


def trial_seeds(
    master_seed: int, experiment: str, num_trials: int
) -> Tuple[int, ...]:
    """Per-trial integer seeds for an experiment, stable across runs."""
    if num_trials < 0:
        raise ConfigurationError(f"num_trials must be >= 0; got {num_trials}")
    base = rng_from(master_seed, experiment)
    return tuple(int(value) for value in base.integers(0, 2**31 - 1, size=num_trials))


def replica_streams(master_seed: int, experiment: str, num_replicas: int):
    """Per-replica generator streams for a batched Monte-Carlo run.

    The streams are built from the same integer seeds that
    :func:`trial_seeds` hands to a loop of single runs, so a
    :class:`~repro.batch.engine.BatchedEngine` fed these streams reproduces
    that loop replica for replica.

    Returns
    -------
    repro.batch.streams.ReplicaStreams
    """
    from repro.batch.streams import ReplicaStreams

    return ReplicaStreams(trial_seeds(master_seed, experiment, num_replicas))
