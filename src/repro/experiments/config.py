"""Experiment configuration objects.

Configurations are plain frozen dataclasses so that every experiment is fully
described by data (and therefore serialisable next to its results): which
protocol, which graph family and sizes, how many seeds, what round budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.graphs.generators import GRAPH_FAMILIES


@dataclass(frozen=True)
class GraphSpec:
    """Specification of one benchmark graph.

    Attributes
    ----------
    family:
        Name of the graph family (see
        :data:`repro.graphs.generators.GRAPH_FAMILIES`).
    n:
        Target number of nodes (families with structured sizes round it).
    seed:
        Seed used by randomised generators (ignored by deterministic ones).
    """

    family: str
    n: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.family not in GRAPH_FAMILIES:
            raise ConfigurationError(
                f"unknown graph family {self.family!r}; "
                f"known: {', '.join(GRAPH_FAMILIES)}"
            )
        if self.n < 1:
            raise ConfigurationError(f"graph size must be >= 1; got {self.n}")

    @property
    def label(self) -> str:
        """Short display label such as ``"path(64)"``."""
        return f"{self.family}({self.n})"


@dataclass(frozen=True)
class ProtocolSpecConfig:
    """Specification of one protocol entry in an experiment.

    Attributes
    ----------
    name:
        Registry name (for BFW-family protocols) or baseline identifier
        (``"id-broadcast"``, ``"pipelined-ids"``, ``"gilbert-newport"``,
        ``"emek-keren"``).
    params:
        Extra constructor parameters.
    """

    name: str
    params: Mapping[str, object] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """Display label including overridden parameters."""
        if not self.params:
            return self.name
        rendered = ",".join(f"{key}={value}" for key, value in sorted(self.params.items()))
        return f"{self.name}[{rendered}]"


@dataclass(frozen=True)
class TrialConfig:
    """One simulated execution: a protocol on a graph with a seed."""

    protocol: ProtocolSpecConfig
    graph: GraphSpec
    seed: int
    max_rounds: Optional[int] = None


@dataclass(frozen=True)
class SweepConfig:
    """A full experiment: a protocol set crossed with a graph set and seeds.

    Attributes
    ----------
    name:
        Experiment identifier (used in result files and reports).
    protocols:
        Protocols to compare.
    graphs:
        Benchmark graphs.
    num_seeds:
        Number of independent trials per (protocol, graph) cell.
    master_seed:
        Master seed from which all trial seeds are derived.
    max_rounds:
        Optional per-trial round budget (defaults to the simulator's
        ``D²``-scaled budget).
    """

    name: str
    protocols: Tuple[ProtocolSpecConfig, ...]
    graphs: Tuple[GraphSpec, ...]
    num_seeds: int = 10
    master_seed: int = 0
    max_rounds: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_seeds < 1:
            raise ConfigurationError(
                f"num_seeds must be >= 1; got {self.num_seeds}"
            )
        if not self.protocols:
            raise ConfigurationError("a sweep needs at least one protocol")
        if not self.graphs:
            raise ConfigurationError("a sweep needs at least one graph")

    def cells(self) -> Tuple[Tuple[ProtocolSpecConfig, GraphSpec], ...]:
        """All (protocol, graph) combinations of the sweep."""
        return tuple(
            (protocol, graph) for protocol in self.protocols for graph in self.graphs
        )
