"""Result records and aggregation for experiment sweeps."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.stats.summary import Summary, summarize_sample


@dataclass(frozen=True)
class TrialRecord:
    """Outcome of a single trial, flattened for serialisation.

    Attributes
    ----------
    protocol:
        Display label of the protocol.
    graph:
        Display label of the graph.
    n, diameter:
        Size and diameter of the graph instance actually used.
    seed:
        Trial seed.
    converged:
        Whether a single leader remained within the budget.
    convergence_round:
        Convergence round (``None`` when not converged).
    rounds_executed:
        Number of simulated rounds.
    extra:
        Free-form additional measurements (e.g. per-stage counts).
    """

    protocol: str
    graph: str
    n: int
    diameter: int
    seed: int
    converged: bool
    convergence_round: Optional[int]
    rounds_executed: int
    extra: Mapping[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dictionary view for JSON/CSV output."""
        record: Dict[str, object] = {
            "protocol": self.protocol,
            "graph": self.graph,
            "n": self.n,
            "diameter": self.diameter,
            "seed": self.seed,
            "converged": self.converged,
            "convergence_round": self.convergence_round,
            "rounds_executed": self.rounds_executed,
        }
        record.update(dict(self.extra))
        return record


@dataclass(frozen=True)
class CellSummary:
    """Aggregated results of all trials of one (protocol, graph) cell."""

    protocol: str
    graph: str
    n: int
    diameter: int
    num_trials: int
    num_converged: int
    rounds: Summary

    @property
    def convergence_rate(self) -> float:
        """Fraction of trials that converged within their budget."""
        return self.num_converged / self.num_trials if self.num_trials else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dictionary view for JSON/CSV output."""
        record: Dict[str, object] = {
            "protocol": self.protocol,
            "graph": self.graph,
            "n": self.n,
            "diameter": self.diameter,
            "num_trials": self.num_trials,
            "num_converged": self.num_converged,
            "convergence_rate": round(self.convergence_rate, 4),
        }
        record.update({f"rounds_{k}": v for k, v in self.rounds.as_dict().items()})
        return record


def aggregate_records(records: Iterable[TrialRecord]) -> Tuple[CellSummary, ...]:
    """Group trial records by (protocol, graph) and summarise each group.

    Non-converged trials contribute their executed-round count to the sample
    (a conservative lower bound on the true convergence time); cells whose
    convergence rate is below one should be interpreted accordingly, and the
    Table-1 generator flags them.
    """
    groups: Dict[Tuple[str, str], List[TrialRecord]] = {}
    for record in records:
        groups.setdefault((record.protocol, record.graph), []).append(record)
    summaries: List[CellSummary] = []
    for (protocol, graph), group in sorted(groups.items()):
        rounds = [
            float(
                record.convergence_round
                if record.convergence_round is not None
                else record.rounds_executed
            )
            for record in group
        ]
        summaries.append(
            CellSummary(
                protocol=protocol,
                graph=graph,
                n=group[0].n,
                diameter=group[0].diameter,
                num_trials=len(group),
                num_converged=sum(1 for record in group if record.converged),
                rounds=summarize_sample(rounds),
            )
        )
    return tuple(summaries)


def records_to_arrays(
    records: Sequence[TrialRecord],
) -> Dict[str, np.ndarray]:
    """Column-oriented view of trial records (for fitting and plotting)."""
    if not records:
        raise ConfigurationError("no records to convert")
    return {
        "n": np.array([record.n for record in records], dtype=float),
        "diameter": np.array([record.diameter for record in records], dtype=float),
        "convergence_round": np.array(
            [
                record.convergence_round
                if record.convergence_round is not None
                else np.nan
                for record in records
            ],
            dtype=float,
        ),
        "converged": np.array([record.converged for record in records], dtype=bool),
    }
