"""Saving and loading experiment results (JSON and CSV)."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from repro.errors import ConfigurationError
from repro.experiments.results import CellSummary, TrialRecord

PathLike = Union[str, Path]


def save_records_json(records: Sequence[TrialRecord], path: PathLike) -> None:
    """Write trial records to a JSON file (one object per record)."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    payload = [record.as_dict() for record in records]
    destination.write_text(json.dumps(payload, indent=2), encoding="utf-8")


def load_records_json(path: PathLike) -> List[TrialRecord]:
    """Read trial records previously written by :func:`save_records_json`."""
    source = Path(path)
    payload = json.loads(source.read_text(encoding="utf-8"))
    if not isinstance(payload, list):
        raise ConfigurationError(f"{source} does not contain a list of records")
    records: List[TrialRecord] = []
    for item in payload:
        known = {
            "protocol",
            "graph",
            "n",
            "diameter",
            "seed",
            "converged",
            "convergence_round",
            "rounds_executed",
        }
        extra = {key: value for key, value in item.items() if key not in known}
        records.append(
            TrialRecord(
                protocol=item["protocol"],
                graph=item["graph"],
                n=int(item["n"]),
                diameter=int(item["diameter"]),
                seed=int(item["seed"]),
                converged=bool(item["converged"]),
                convergence_round=(
                    None
                    if item["convergence_round"] is None
                    else int(item["convergence_round"])
                ),
                rounds_executed=int(item["rounds_executed"]),
                extra=extra,
            )
        )
    return records


def save_records_csv(records: Sequence[TrialRecord], path: PathLike) -> None:
    """Write trial records to a CSV file (flat columns, extras included)."""
    if not records:
        raise ConfigurationError("no records to save")
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    rows = [record.as_dict() for record in records]
    fieldnames: List[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with destination.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)


def save_summaries_csv(summaries: Iterable[CellSummary], path: PathLike) -> None:
    """Write aggregated cell summaries to a CSV file."""
    rows = [summary.as_dict() for summary in summaries]
    if not rows:
        raise ConfigurationError("no summaries to save")
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    with destination.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
