"""Monte-Carlo replica runs: one batched execution per (protocol, graph) cell.

The sweeps behind every statistical claim of the paper run dozens of
independently seeded replicas per configuration.  :class:`MonteCarloRunner`
is the experiment-facing router for that workload:

* constant-state beeping protocols (BFW and the ablation variants) go
  through :class:`~repro.batch.engine.BatchedEngine`, which advances all
  replicas in one ``(R, n)`` state array and retires converged replicas in
  place;
* memory protocols with a registered batch implementation (the Table-1
  ID-broadcast, Emek–Keren-epoch and Gilbert–Newport baselines) go through
  :class:`~repro.batch.memory.BatchedMemoryEngine`, which does the same for
  their integer/boolean memory arrays;
* everything else (standalone baseline runners such as the pipelined-IDs
  election) keeps the per-seed path through
  :func:`~repro.experiments.runner.run_protocol_on`, and its results are
  assembled into the same :class:`~repro.batch.results.BatchResult` shape.

Because the batched engine is replica-for-replica identical to a loop of
single runs under matched seeds, routing through the runner never changes
experiment output — only how fast it arrives.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.batch.engine import BatchedEngine
from repro.batch.memory import BatchedMemoryEngine, supports_batched_memory
from repro.batch.results import BatchResult
from repro.batch.streams import SeedLike
from repro.core.protocol import BeepingProtocol
from repro.errors import ConfigurationError
from repro.experiments.config import GraphSpec, ProtocolSpecConfig
from repro.experiments.runner import run_protocol_on
from repro.experiments.seeds import DEFAULT_MASTER_SEED, trial_seeds
from repro.graphs.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - typing-only import, avoids a module cycle
    from repro.batch.observers import BatchObserver
    from repro.dynamics.schedules import TopologySchedule
    from repro.exec import BackendSpec, ShardSize
from repro.stats.summary import Summary, summarize_sample
from repro.viz.table_format import render_table


@dataclass(frozen=True)
class MonteCarloRunner:
    """Route replica batches to the fastest engine that preserves results.

    Parameters
    ----------
    max_rounds:
        Default round budget applied when ``run`` is not given one.
    record_leader_counts:
        Whether batched runs keep per-replica leader-count trajectories
        (off by default: sweeps only aggregate convergence rounds).
    """

    max_rounds: Optional[int] = None
    record_leader_counts: bool = False

    def run(
        self,
        topology: Topology,
        protocol: object,
        seeds: Sequence[SeedLike],
        max_rounds: Optional[int] = None,
        initial_states: Optional[np.ndarray] = None,
        schedule: Optional["TopologySchedule"] = None,
        observers: Sequence["BatchObserver"] = (),
        kernel: Optional[str] = None,
    ) -> BatchResult:
        """Run one replica per seed and return the batch outcome.

        Constant-state protocols and batch-supported memory baselines advance
        in a single batched state array; anything else falls back to a
        per-seed loop with identical results.  ``initial_states`` (an
        ``(n,)`` vector shared by all replicas, e.g. planted leaders) and
        ``schedule`` (a :class:`~repro.dynamics.schedules.TopologySchedule`
        swapping the adjacency between rounds) are only meaningful for
        constant-state protocols.  ``observers``
        (:class:`~repro.batch.observers.BatchObserver` instances) are
        attached to whichever batched engine runs the replicas; the per-seed
        fallback has no observation hooks and rejects them.  ``kernel``
        selects the batched engine's round kernel
        (:mod:`repro.batch.kernels`); engines without a kernel seam — the
        memory baselines and standalone runners — ignore it, since their
        records are kernel-invariant by definition.
        """
        if len(seeds) == 0:
            raise ConfigurationError("a Monte-Carlo run needs at least one seed")
        budget = max_rounds if max_rounds is not None else self.max_rounds
        if isinstance(protocol, BeepingProtocol):
            engine = BatchedEngine(
                topology, protocol, schedule=schedule, kernel=kernel
            )
            return engine.run(
                list(seeds),
                max_rounds=budget,
                initial_states=(
                    None if initial_states is None else np.asarray(initial_states)
                ),
                record_leader_counts=self.record_leader_counts,
                observers=observers,
            )
        if schedule is not None:
            raise ConfigurationError(
                "topology schedules require a constant-state beeping "
                f"protocol; got {type(protocol).__name__}"
            )
        if initial_states is not None:
            raise ConfigurationError(
                "initial_states requires a constant-state beeping protocol; "
                f"got {type(protocol).__name__}"
            )
        if supports_batched_memory(protocol):
            # Trajectories are always kept on this path: the per-seed loop it
            # replaces carried them too, and on baseline-sized graphs they
            # cost next to nothing.
            memory_engine = BatchedMemoryEngine(topology, protocol)
            return memory_engine.run(
                list(seeds), max_rounds=budget, observers=observers
            )
        if observers:
            raise ConfigurationError(
                "batch observers require a constant-state protocol or a "
                "batch-supported memory baseline; standalone runner "
                f"{type(protocol).__name__} has no observation hooks"
            )
        run_batch = getattr(protocol, "run_batch", None)
        if callable(run_batch):
            # Standalone runners with a batch entry point (the pipelined-IDs
            # election) advance all replicas together — replica-for-replica
            # identical to the per-seed loop under matched seeds, so the
            # cell shards like every other protocol.
            return run_batch(topology, list(seeds), max_rounds=budget)
        results = [
            run_protocol_on(topology, protocol, rng=seed, max_rounds=budget)
            for seed in seeds
        ]
        return BatchResult.from_simulation_results(
            results,
            seeds=[
                int(seed) if isinstance(seed, (int, np.integer)) else None
                for seed in seeds
            ],
        )


def runs_batched(protocol: object) -> bool:
    """Whether :class:`MonteCarloRunner` advances ``protocol`` batched.

    True for constant-state beeping protocols, for memory baselines with a
    registered batch implementation, and for standalone runners exposing a
    ``run_batch`` entry point (the pipelined-IDs election); False for
    runners that keep the per-seed loop.
    """
    return (
        isinstance(protocol, BeepingProtocol)
        or supports_batched_memory(protocol)
        or callable(getattr(protocol, "run_batch", None))
    )


@dataclass(frozen=True)
class MonteCarloReport:
    """Rendered summary of one ``repro montecarlo`` invocation."""

    protocol: str
    graph: str
    n: int
    diameter: int
    num_replicas: int
    batched: bool
    rounds: Summary
    convergence_rate: float
    #: Number of distinct elected nodes across converged replicas, or
    #: ``None`` when leader identities are unavailable (the per-seed loop
    #: path does not record them).
    distinct_leaders: Optional[int]
    total_replica_rounds: int
    elapsed_seconds: float
    result: BatchResult

    @property
    def replica_rounds_per_second(self) -> float:
        """Throughput in simulated replica-rounds per wall-clock second."""
        return self.total_replica_rounds / max(self.elapsed_seconds, 1e-9)

    def render(self) -> str:
        """Plain-text report table."""
        rows = [
            ("replicas", self.num_replicas),
            ("engine", "batched" if self.batched else "per-seed loop"),
            ("convergence rate", self.convergence_rate),
            ("mean rounds", self.rounds.mean),
            ("median rounds", self.rounds.median),
            ("q95 rounds", self.rounds.q95),
            (
                "distinct leaders",
                "unknown" if self.distinct_leaders is None else self.distinct_leaders,
            ),
            ("replica-rounds", self.total_replica_rounds),
            ("replica-rounds/sec", round(self.replica_rounds_per_second)),
        ]
        return render_table(
            ["metric", "value"],
            rows,
            title=(
                f"Monte Carlo — {self.protocol} on {self.graph} "
                f"(n={self.n}, D={self.diameter})"
            ),
        )


def run_monte_carlo(
    protocol: str = "bfw",
    graph: str = "cycle",
    n: int = 64,
    replicas: int = 32,
    master_seed: int = DEFAULT_MASTER_SEED,
    max_rounds: Optional[int] = None,
    params: Optional[dict] = None,
    backend: "BackendSpec" = None,
    shard_size: "ShardSize" = None,
    heartbeat_interval: Optional[int] = None,
    kernel: Optional[str] = None,
) -> MonteCarloReport:
    """Run ``replicas`` seeded executions of one configuration and summarise.

    The per-replica seeds come from :func:`trial_seeds` under the experiment
    key ``montecarlo/<protocol>/<graph>/<n>``, so the run is reproducible
    from ``master_seed`` alone.  On deterministic graph families (paths,
    cycles, grids, …) each replica can also be re-run in isolation with
    ``repro run --seed <seed>``; randomised families (geometric,
    Erdős–Rényi) are seeded from ``master_seed`` here but from ``--seed``
    by ``repro run``, so the standalone command rebuilds a different graph.

    ``backend`` selects the :mod:`repro.exec` execution backend and defaults
    to ``"batched"`` (the historical behaviour of this entry point); the
    per-replica outcomes are identical on every backend, but only batched
    executions record elected-node identities.  ``shard_size`` (int or
    ``"auto"`` = ``ceil(replicas / workers)``) splits the run's single cell
    into seed-list shards — the setting that lets ``process:N`` spread one
    large montecarlo cell across all workers, byte-identically.

    ``elapsed_seconds`` (and therefore the reported replica-rounds/sec)
    times the whole backend execution — graph rebuild and protocol
    instantiation included, and for ``"process:N"`` the worker-pool
    startup too.  It measures what the chosen backend costs end to end,
    not bare engine throughput; use
    ``benchmarks/bench_batched_engine.py`` for engine-only numbers.
    """
    from repro.exec import ExecutionCell, resolve_backend

    if replicas < 1:
        raise ConfigurationError(f"replicas must be >= 1; got {replicas}")
    resolved = resolve_backend(
        backend,
        default="batched",
        shard_size=shard_size,
        heartbeat_interval=heartbeat_interval,
        kernel=kernel,
    )
    cell = ExecutionCell(
        protocol=ProtocolSpecConfig(name=protocol, params=dict(params or {})),
        graph=GraphSpec(family=graph, n=n),
        seeds=trial_seeds(master_seed, f"montecarlo/{protocol}/{graph}/{n}", replicas),
        max_rounds=max_rounds,
        graph_rng_key=(master_seed, "montecarlo-graph", graph, n),
    )
    start = time.perf_counter()
    outcome = resolved.run_cell_outcomes((cell,))[0]
    elapsed = time.perf_counter() - start

    batch = outcome.batch
    if batch is None:
        batch = BatchResult.from_simulation_results(
            outcome.results, seeds=list(cell.seeds)
        )
    # Leader identities exist on both batched paths; the per-seed fallback
    # assembles SimulationResults, which do not record the elected node.
    has_leader_identities = outcome.batched
    return MonteCarloReport(
        protocol=protocol,
        graph=outcome.topology_name,
        n=outcome.n,
        diameter=outcome.diameter,
        num_replicas=batch.num_replicas,
        batched=outcome.batched,
        rounds=summarize_sample([float(r) for r in batch.effective_rounds()]),
        convergence_rate=batch.convergence_rate,
        distinct_leaders=(
            int(np.unique(batch.leader_node[batch.converged]).size)
            if has_leader_identities
            else None
        ),
        total_replica_rounds=batch.total_replica_rounds,
        elapsed_seconds=elapsed,
        result=batch,
    )
