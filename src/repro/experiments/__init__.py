"""Experiment harness: configs, runners, Table-1 and figure regeneration."""

from repro.experiments.config import (
    GraphSpec,
    ProtocolSpecConfig,
    SweepConfig,
    TrialConfig,
)
from repro.experiments.figures import (
    AblationResult,
    CrossoverResult,
    LowerBoundResult,
    ScalingResult,
    ablation_experiment,
    crossover_experiment,
    lower_bound_experiment,
    scaling_experiment,
)
from repro.experiments.dynamics import (
    DEFAULT_DYNAMIC_MAX_ROUNDS,
    DynamicCellRow,
    DynamicResult,
    dynamic_experiment,
    schedule_spec_for_rate,
)
from repro.experiments.extinction import (
    ExtinctionCellRow,
    ExtinctionResult,
    leader_extinction_experiment,
)
from repro.experiments.io import (
    load_records_json,
    save_records_csv,
    save_records_json,
    save_summaries_csv,
)
from repro.experiments.results import (
    CellSummary,
    TrialRecord,
    aggregate_records,
    records_to_arrays,
)
from repro.experiments.montecarlo import (
    MonteCarloReport,
    MonteCarloRunner,
    run_monte_carlo,
)
from repro.experiments.runner import (
    BASELINE_NAMES,
    cell_progress_adapter,
    instantiate_protocol,
    run_protocol_batch_on,
    run_protocol_on,
    run_sweep,
    run_trial,
    sweep_cells,
)
from repro.experiments.seeds import (
    DEFAULT_MASTER_SEED,
    replica_streams,
    rng_from,
    spawn_seeds,
    trial_seeds,
)
from repro.experiments.tables import (
    DEFAULT_TABLE1_GRAPHS,
    DEFAULT_TABLE1_PROTOCOLS,
    Table1Result,
    Table1Row,
    generate_table1,
)

__all__ = [
    "AblationResult",
    "BASELINE_NAMES",
    "CellSummary",
    "CrossoverResult",
    "DEFAULT_DYNAMIC_MAX_ROUNDS",
    "DEFAULT_MASTER_SEED",
    "DEFAULT_TABLE1_GRAPHS",
    "DEFAULT_TABLE1_PROTOCOLS",
    "DynamicCellRow",
    "DynamicResult",
    "ExtinctionCellRow",
    "ExtinctionResult",
    "GraphSpec",
    "LowerBoundResult",
    "MonteCarloReport",
    "MonteCarloRunner",
    "ProtocolSpecConfig",
    "ScalingResult",
    "SweepConfig",
    "Table1Result",
    "Table1Row",
    "TrialConfig",
    "TrialRecord",
    "ablation_experiment",
    "aggregate_records",
    "crossover_experiment",
    "dynamic_experiment",
    "generate_table1",
    "instantiate_protocol",
    "leader_extinction_experiment",
    "load_records_json",
    "lower_bound_experiment",
    "records_to_arrays",
    "replica_streams",
    "rng_from",
    "run_monte_carlo",
    "run_protocol_batch_on",
    "run_protocol_on",
    "cell_progress_adapter",
    "run_sweep",
    "run_trial",
    "sweep_cells",
    "save_records_csv",
    "save_records_json",
    "save_summaries_csv",
    "scaling_experiment",
    "schedule_spec_for_rate",
    "spawn_seeds",
    "trial_seeds",
]
