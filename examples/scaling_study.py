#!/usr/bin/env python
"""Reproduce the paper's scaling claims (Theorems 2 and 3) as an ASCII figure.

The experiment sweeps path graphs of increasing diameter, measures the mean
convergence time of uniform BFW (p = 1/2) and of the non-uniform variant
(p = 1/(D+1)), fits scaling models to both, and renders a log–log ASCII plot
— the closest thing this terminal-only reproduction has to the "figure" a
systems paper would show.

Expected outcome (the theorems' shape):

* uniform BFW grows roughly like D² (times a slowly varying log factor),
* non-uniform BFW grows roughly like D,
* the gap between them widens linearly in D.

Run it with::

    python examples/scaling_study.py          # quick version
    python examples/scaling_study.py --full   # larger diameters (slower)
"""

from __future__ import annotations

import argparse

from repro.experiments import scaling_experiment
from repro.viz import ascii_plot


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="use larger diameters")
    parser.add_argument("--seeds", type=int, default=8)
    args = parser.parse_args()

    diameters = (8, 16, 32, 64, 96) if args.full else (8, 16, 32, 48)

    uniform = scaling_experiment(
        mode="uniform", diameters=diameters, num_seeds=args.seeds, master_seed=1
    )
    nonuniform = scaling_experiment(
        mode="nonuniform", diameters=diameters, num_seeds=args.seeds, master_seed=2
    )

    print(uniform.render())
    print()
    print(nonuniform.render())
    print()

    series = {
        "uniform p=1/2 (Thm 2)": [
            (point.diameter, point.rounds.mean) for point in uniform.points
        ],
        "p = 1/(D+1) (Thm 3)": [
            (point.diameter, point.rounds.mean) for point in nonuniform.points
        ],
    }
    print(
        ascii_plot(
            series,
            logx=True,
            logy=True,
            width=64,
            height=18,
            title="Convergence time vs diameter (log-log)",
            xlabel="diameter D",
            ylabel="rounds",
        )
    )

    print(
        f"\nfitted exponents: uniform ~ D^{uniform.power_law.exponent:.2f}, "
        f"non-uniform ~ D^{nonuniform.power_law.exponent:.2f}"
    )
    print(
        "speed-up at the largest diameter: "
        f"{uniform.points[-1].rounds.mean / nonuniform.points[-1].rounds.mean:.1f}x"
    )


if __name__ == "__main__":
    main()
