#!/usr/bin/env python
"""Quickstart: elect a leader with BFW on a small network.

This example walks through the public API end to end:

1. build a communication graph,
2. run the six-state BFW protocol on it,
3. inspect the outcome (who won, how long it took),
4. verify the paper's deterministic guarantees on the recorded execution,
5. compare against the non-uniform variant that knows the diameter.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import BFWProtocol, NonUniformBFWProtocol, VectorizedEngine
from repro.analysis import check_all_invariants, summarize_trace
from repro.graphs import cycle_graph
from repro.viz import leader_count_timeline


def main() -> None:
    # 1. A cycle of 48 anonymous nodes; nobody knows n, D, or has an ID.
    topology = cycle_graph(48)
    print(f"graph: {topology.name}  (n = {topology.n}, D = {topology.diameter()})")

    # 2. Run the uniform BFW protocol (p = 1/2), recording the full history.
    protocol = BFWProtocol(beep_probability=0.5)
    engine = VectorizedEngine(topology, protocol)
    result = engine.run(rng=2024, record_trace=True)

    # 3. Inspect the outcome.
    summary = summarize_trace(result.trace)
    print(f"converged:          {summary.converged}")
    print(f"convergence round:  {summary.convergence_round}")
    print(f"surviving leader:   node {summary.winner}")
    print(f"initial leaders:    {summary.initial_leader_count}")
    print(leader_count_timeline(result.trace))

    # 4. Check the paper's deterministic properties (Section 3) on this very
    #    execution: Claim 6, Lemma 9, Lemma 11, and the flow machinery.
    check_all_invariants(result.trace, topology)
    print("all deterministic invariants of Section 3 hold on this execution")

    # 5. The non-uniform variant (Theorem 3) knows D and converges much faster
    #    on high-diameter graphs.
    nonuniform = NonUniformBFWProtocol(diameter=topology.diameter())
    fast_result = VectorizedEngine(topology, nonuniform).run(rng=2024)
    print(
        f"uniform p=1/2 took {result.convergence_round} rounds; "
        f"p = 1/(D+1) took {fast_result.convergence_round} rounds"
    )


if __name__ == "__main__":
    main()
