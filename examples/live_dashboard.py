#!/usr/bin/env python
"""Watch a sweep run live, then export its span tree as a Chrome trace.

Against a running sweep service (or one it boots itself), this script

1. submits a Monte-Carlo sweep with ``heartbeat_interval=1`` so every
   engine round is eligible to beat,
2. polls the service while the sweep runs and renders ``repro top``
   frames — totals, one row per sweep, and a live line per in-flight
   shard (engine round, active replicas, rounds/sec, beat age),
3. drains the event stream, counting the in-flight ``progress`` records
   that arrived before the summary,
4. exports the finished sweep's span tree (sweep → cell → shard →
   attempt) as a Chrome trace-event file you can load at
   https://ui.perfetto.dev or chrome://tracing.

Run it against a daemon you started::

    repro serve --port 8123 --workers 2 &
    python examples/live_dashboard.py http://127.0.0.1:8123

or let it boot an in-process daemon::

    python examples/live_dashboard.py

``--once`` renders a single frame per phase without clearing the screen
(what CI uses); ``--trace-out PATH`` overrides the trace file location.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.exec import ExecutionCell
from repro.experiments.config import GraphSpec, ProtocolSpecConfig
from repro.experiments.seeds import trial_seeds
from repro.service import ServiceClient
from repro.service.dashboard import render_top
from repro.telemetry.spans import spans_from_records, write_chrome_trace


def dashboard_cells() -> tuple:
    cells = []
    for graph, n in (("cycle", 96), ("path", 61)):
        cells.append(
            ExecutionCell(
                protocol=ProtocolSpecConfig(name="bfw"),
                graph=GraphSpec(family=graph, n=n),
                seeds=trial_seeds(23, f"live-dashboard/{graph}/{n}", 32),
                graph_rng_key=(23, "live-dashboard-graph", graph, n),
            )
        )
    return tuple(cells)


def render_frame(client: ServiceClient, clear: bool) -> None:
    sweeps = client.sweeps()
    statuses = {
        str(row.get("id")): client.status(str(row.get("id")))
        for row in sweeps.get("sweeps") or ()
        if row.get("state") == "running"
    }
    frame = render_top(
        client.healthz(), client.metrics(), sweeps, statuses, url=client.url
    )
    if clear:
        sys.stdout.write("\x1b[2J\x1b[H")
    sys.stdout.write(frame)
    sys.stdout.flush()


def watch(url: str, once: bool, trace_out: str | None) -> int:
    client = ServiceClient(url)
    receipt = client.submit(
        dashboard_cells(), shard_size=8, heartbeat_interval=1
    )
    sweep_id = str(receipt["id"])
    print(f"submitted sweep {sweep_id} with heartbeat_interval=1\n")

    # Drain the event stream until the sweep completes, rendering a
    # dashboard frame each time the long-poll wakes.  Each events() call
    # returns on the FIRST new event past the cursor, so in-flight
    # progress records drive the refresh cadence.
    cursor = 0
    beats = 0
    frames = 0
    while True:
        poll = client.events(sweep_id, cursor=cursor, timeout=15.0)
        beats += sum(
            1 for record in poll["events"] if record["event"] == "progress"
        )
        cursor = int(poll["cursor"])
        if not once or frames == 0:
            render_frame(client, clear=not once)
            frames += 1
        if poll["done"]:
            break
        if not once:
            time.sleep(0.1)

    status = client.status(sweep_id)
    if status["state"] != "done":
        print(f"sweep {sweep_id} ended {status['state']}", file=sys.stderr)
        return 1
    render_frame(client, clear=False)
    print(f"\nsweep {sweep_id} done — {beats} in-flight progress event(s)")

    out = trace_out if trace_out is not None else f"{sweep_id}.trace.json"
    spans = spans_from_records(client.spans(sweep_id).get("spans") or ())
    write_chrome_trace(spans, out)
    print(
        f"wrote {len(spans)} spans to {out} "
        f"(load it at https://ui.perfetto.dev or chrome://tracing)"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("url", nargs="?", default=None)
    parser.add_argument(
        "--once",
        action="store_true",
        help="render one frame per phase without clearing the screen",
    )
    parser.add_argument("--trace-out", default=None, metavar="PATH")
    args = parser.parse_args()
    if args.url is not None:
        return watch(args.url, args.once, args.trace_out)
    from repro.service import SweepService

    with SweepService(workers=2) as daemon:
        return watch(daemon.url, args.once, args.trace_out)


if __name__ == "__main__":
    raise SystemExit(main())
