#!/usr/bin/env python
"""Smoke-test the sweep service end to end: parity, cache, clean status.

Against a running daemon (or one it boots itself), this script

1. waits for ``GET /healthz`` to answer,
2. submits a small sweep through ``ServiceBackend`` and checks the
   records are byte-identical to a local ``SequentialBackend`` run,
3. resubmits the identical sweep and asserts it was served from the
   content-addressed result cache (``service.cache_hits`` advanced,
   no new shards executed),
4. submits a fresh sweep with a per-sweep ``heartbeat_interval`` and
   asserts an in-flight ``progress`` event arrives **before** the sweep
   completes — live observability, not just a post-hoc summary,
5. prints the service counters.

Run it against a daemon you started (CI does this)::

    repro serve --port 8123 &
    python examples/service_smoke.py http://127.0.0.1:8123

or let it boot an in-process daemon::

    python examples/service_smoke.py
"""

from __future__ import annotations

import sys
import time

from repro.exec import ExecutionCell, SequentialBackend
from repro.experiments.config import GraphSpec, ProtocolSpecConfig
from repro.experiments.seeds import trial_seeds
from repro.service import ServiceBackend, ServiceClient


def wait_for_healthz(client: ServiceClient, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while True:
        try:
            payload = client.healthz()
        except Exception:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.2)
        else:
            print(f"healthz: {payload}")
            return


def smoke_cells() -> tuple:
    cells = []
    for graph, n in (("cycle", 16), ("path", 13)):
        cells.append(
            ExecutionCell(
                protocol=ProtocolSpecConfig(name="bfw"),
                graph=GraphSpec(family=graph, n=n),
                seeds=trial_seeds(17, f"service-smoke/{graph}/{n}", 6),
                graph_rng_key=(17, "service-smoke-graph", graph, n),
            )
        )
    return tuple(cells)


def run_smoke(url: str) -> None:
    client = ServiceClient(url)
    wait_for_healthz(client)

    cells = smoke_cells()
    local = SequentialBackend().run_cells(cells)

    backend = ServiceBackend(url, shard_size=3)
    first = backend.run_cells(cells)
    assert first == local, "service records differ from a local sequential run"
    print(f"parity: {len(first)} records byte-identical to SequentialBackend")

    before = client.metrics()["service"]["counters"]
    second = backend.run_cells(cells)
    assert second == local, "cached records differ from the original run"
    after = client.metrics()["service"]["counters"]
    hits = after.get("service.cache_hits", 0) - before.get("service.cache_hits", 0)
    executed = after.get("service.shards_executed", 0) - before.get(
        "service.shards_executed", 0
    )
    assert hits >= len(cells), f"expected a cache hit per cell, got {hits}"
    assert executed == 0, f"resubmission executed {executed} new shards"
    print(f"cache: resubmission served {hits} cells from cache, 0 shards executed")

    # Live observability: with heartbeats on, the event stream must carry
    # an in-flight "progress" record while the sweep is still running —
    # i.e. an events() poll wakes with done=False before the summary lands.
    live = ExecutionCell(
        protocol=ProtocolSpecConfig(name="bfw"),
        graph=GraphSpec(family="cycle", n=96),
        seeds=trial_seeds(18, "service-smoke/live/96", 48),
        graph_rng_key=(18, "service-smoke-live-graph", "cycle", 96),
    )
    sweep_id = str(client.submit([live], heartbeat_interval=1)["id"])
    cursor = 0
    saw_progress_before_done = False
    kinds: list = []
    # Each events() call is a long-poll that wakes on the FIRST new event
    # past the cursor, so drain in a loop until the done flag flips.
    for _ in range(600):
        poll = client.events(sweep_id, cursor=cursor, timeout=15.0)
        for record in poll["events"]:
            kinds.append(record["event"])
            if record["event"] == "progress" and not poll["done"]:
                saw_progress_before_done = True
        cursor = int(poll["cursor"])
        if poll["done"]:
            break
    else:
        raise AssertionError("live sweep never reported done")
    assert "progress" in kinds, f"no in-flight progress events in {kinds}"
    assert saw_progress_before_done, (
        "every progress event arrived only after completion — "
        "in-flight observability is broken"
    )
    assert kinds.index("progress") < kinds.index("summary")
    beats = kinds.count("progress")
    print(f"live: {beats} in-flight progress event(s) before completion")

    print("service counters:")
    for name in sorted(after):
        print(f"  {name} = {after[name]}")
    print("service smoke OK")


def main() -> None:
    if len(sys.argv) > 1:
        run_smoke(sys.argv[1])
    else:
        from repro.service import SweepService

        with SweepService(workers=2) as daemon:
            run_smoke(daemon.url)


if __name__ == "__main__":
    main()
