#!/usr/bin/env python
"""Watch beep waves travel, crash, and eliminate leaders on a path.

The paper explains BFW in terms of *beep waves*: each leader's beep expands
outwards one hop per round; waves from different leaders crash into each
other; a leader crossed by a wave is eliminated.  The best way to understand
why convergence takes ~D² rounds on a path is to look at a space–time diagram
of an execution — which is exactly what this example prints.

It also reproduces, in miniature, the two situations discussed in the paper:

* the standard start (every node a leader) and
* the Section 5 lower-bound configuration (two leaders at the two ends of a
  path), whose wave boundary drifts like a random walk.

Run it with::

    python examples/beep_wave_visualization.py
"""

from __future__ import annotations

from repro import BFWProtocol, VectorizedEngine
from repro.analysis import boundary_positions
from repro.beeping import planted_leaders_initial_states
from repro.graphs import path_graph
from repro.viz import spacetime_diagram


def standard_start() -> None:
    """Every node starts as a leader (the paper's Eq. (2))."""
    topology = path_graph(40)
    engine = VectorizedEngine(topology, BFWProtocol())
    result = engine.run(rng=7, record_trace=True, max_rounds=400)
    print("=== all nodes start as leaders ===")
    print(spacetime_diagram(result.trace, max_rounds=60))
    remaining = result.trace.leader_count(result.trace.num_rounds)
    print(f"... {remaining} leader(s) remain after {result.trace.num_rounds} rounds\n")


def two_diametral_leaders() -> None:
    """The Section 5 configuration: two leaders at the ends of the path."""
    topology = path_graph(40)
    initial = planted_leaders_initial_states(topology, (0, topology.n - 1))
    engine = VectorizedEngine(topology, BFWProtocol())
    result = engine.run(
        rng=11, record_trace=True, max_rounds=100_000, initial_states=initial
    )
    print("=== two leaders at the two ends (lower-bound configuration) ===")
    print(spacetime_diagram(result.trace, max_rounds=80))
    print(
        f"one of the two leaders was eliminated in round "
        f"{result.convergence_round} (D = {topology.diameter()}, "
        f"D^2 = {topology.diameter() ** 2})"
    )

    # The boundary between the two wave systems drifts like a random walk.
    positions = boundary_positions(result.trace, topology, 0, topology.n - 1)
    samples = positions[:: max(1, len(positions) // 10)]
    print("boundary position over time (node index between the two leaders):")
    for round_index, position in samples:
        print(f"  round {round_index:>6}: {position:6.1f}")


def main() -> None:
    standard_start()
    two_diametral_leaders()


if __name__ == "__main__":
    main()
