#!/usr/bin/env python
"""Compare BFW against the Table-1 baselines on a few topologies.

This example runs the implemented protocols — BFW (uniform and non-uniform),
the ID-broadcast election, the pipelined O(D + log n) election, the
diameter-aware epoch protocol, and the clique-only constant-state knockout —
on a path, a random graph and a clique, and prints a small comparison table
along with each protocol's resource requirements (the qualitative columns of
Table 1).

Run it with::

    python examples/compare_protocols.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments import instantiate_protocol, run_protocol_on
from repro.experiments.tables import TABLE1_INFO
from repro.graphs import clique_graph, erdos_renyi_graph, path_graph
from repro.viz import render_table

PROTOCOLS = (
    "bfw",
    "bfw-nonuniform",
    "id-broadcast",
    "pipelined-ids",
    "emek-keren",
    "gilbert-newport",
)

GRAPHS = (
    path_graph(33),
    erdos_renyi_graph(64, rng=1),
    clique_graph(64),
)

NUM_SEEDS = 5


def mean_rounds(protocol_name: str, topology) -> float:
    """Mean convergence round of a protocol over a few seeds."""
    rounds = []
    for seed in range(NUM_SEEDS):
        protocol = instantiate_protocol(protocol_name, topology)
        result = run_protocol_on(topology, protocol, rng=seed)
        rounds.append(
            result.convergence_round
            if result.convergence_round is not None
            else result.rounds_executed
        )
    return float(np.mean(rounds))


def main() -> None:
    rows = []
    for name in PROTOCOLS:
        info = TABLE1_INFO[name]
        cells = [name, info.round_complexity, info.knowledge, info.states]
        for topology in GRAPHS:
            if name == "gilbert-newport" and not topology.name.startswith("clique"):
                cells.append("-")  # correct only on single-hop networks
                continue
            cells.append(f"{mean_rounds(name, topology):.0f}")
        rows.append(tuple(cells))

    headers = ["protocol", "complexity", "knowledge", "states"] + [
        f"rounds {topology.name}" for topology in GRAPHS
    ]
    print(render_table(headers, rows, title="Protocol comparison (Table 1, measured)"))

    print(
        "\nReading guide: BFW needs no identifiers, no knowledge and only six\n"
        "states, and pays for it with an extra ~D factor on high-diameter\n"
        "graphs; telling it the diameter (bfw-nonuniform) recovers most of\n"
        "the gap, which is exactly the trade-off the paper's Table 1 states."
    )


if __name__ == "__main__":
    main()
