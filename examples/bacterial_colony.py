#!/usr/bin/env python
"""A synthetic "bacterial colony" electing a coordinator with beeps.

The paper motivates BFW with the simplest distributed systems — colonies of
primitive organisms that can do little more than emit and sense a pulse.
This example builds that scenario synthetically:

* the colony is a random geometric graph (cells scattered in a dish,
  communicating with neighbours within sensing range);
* each cell runs the six-state BFW protocol with a fair coin — no identifiers,
  no knowledge of the colony's size or extent;
* we watch the number of would-be coordinators shrink until one remains, and
  check how the convergence time compares with the paper's O(D² log n) bound.

Run it with::

    python examples/bacterial_colony.py
"""

from __future__ import annotations

import math

from repro import BFWProtocol, VectorizedEngine
from repro.analysis import elimination_times, summarize_trace
from repro.graphs import random_geometric_graph, summarize
from repro.viz import render_table, sparkline


def main() -> None:
    # A colony of 300 cells in the unit square, connected by sensing range.
    colony = random_geometric_graph(300, rng=42)
    stats = summarize(colony)
    print("colony layout")
    print(
        render_table(
            ["n", "edges", "diameter", "mean degree"],
            [(stats.n, stats.num_edges, stats.diameter, stats.mean_degree)],
        )
    )

    protocol = BFWProtocol(beep_probability=0.5)
    engine = VectorizedEngine(colony, protocol)
    result = engine.run(rng=7, record_trace=True)
    trace = result.trace
    summary = summarize_trace(trace)

    print(f"\ncoordinator elected: cell {summary.winner}")
    print(f"rounds to a single coordinator: {summary.convergence_round}")

    bound = stats.diameter**2 * math.log(stats.n)
    print(
        f"paper's bound scale D^2 ln n = {bound:.0f} rounds "
        f"(measured / bound = {summary.convergence_round / bound:.2f})"
    )

    counts = [float(c) for c in trace.leader_counts()]
    print("\ncandidate coordinators over time:")
    print("  " + sparkline(counts, width=70))

    # When were cells eliminated?  Most eliminations happen early (dense
    # neighbourhoods knock each other out), the last few take the longest —
    # the long-range wave duels the analysis is really about.
    events = elimination_times(trace)
    first_decile = events[: max(1, len(events) // 10)]
    last_decile = events[-max(1, len(events) // 10):]
    print(
        f"\nfirst 10% of eliminations happened by round "
        f"{max(r for _, r in first_decile)}, the last 10% between rounds "
        f"{min(r for _, r in last_decile)} and {max(r for _, r in last_decile)}"
    )


if __name__ == "__main__":
    main()
